#include "lina/snap/io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lina::snap {

namespace {

[[noreturn]] void fail(const std::filesystem::path& path, const char* op,
                       const std::string& detail) {
  throw SnapIoError(path.string() + ": " + op + " failed: " + detail);
}

[[noreturn]] void fail_errno(const std::filesystem::path& path,
                             const char* op) {
  fail(path, op, std::strerror(errno));
}

/// RAII fd that closes on scope exit (double-close safe).
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  void reset() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

/// fsyncs the directory containing `path` so a just-committed rename
/// survives power loss.
void fsync_parent_dir(const std::filesystem::path& path) {
  const std::filesystem::path dir = path.parent_path().empty()
                                        ? std::filesystem::path(".")
                                        : path.parent_path();
  Fd fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY));
  if (fd.get() < 0) fail_errno(dir, "open directory");
  if (::fsync(fd.get()) != 0) fail_errno(dir, "fsync directory");
}

/// Post-commit corruption: what a torn write or decaying medium leaves
/// for the next reader to detect.
void corrupt_committed_file(const std::filesystem::path& path,
                            const FaultPlan& faults) {
  if (faults.truncate_to.has_value()) {
    if (::truncate(path.c_str(),
                   static_cast<off_t>(*faults.truncate_to)) != 0) {
      fail_errno(path, "injected truncate");
    }
  }
  if (!faults.flip_bits.empty()) {
    Fd fd(::open(path.c_str(), O_RDWR));
    if (fd.get() < 0) fail_errno(path, "open for injected bit flip");
    struct stat st {};
    if (::fstat(fd.get(), &st) != 0) fail_errno(path, "fstat");
    for (const std::uint64_t bit : faults.flip_bits) {
      const auto offset = static_cast<off_t>(bit >> 3);
      if (offset >= st.st_size) continue;  // flips past a truncation
      unsigned char byte = 0;
      if (::pread(fd.get(), &byte, 1, offset) != 1) {
        fail_errno(path, "pread for injected bit flip");
      }
      byte ^= static_cast<unsigned char>(1u << (bit & 7u));
      if (::pwrite(fd.get(), &byte, 1, offset) != 1) {
        fail_errno(path, "pwrite for injected bit flip");
      }
    }
  }
}

}  // namespace

void atomic_write_file(const std::filesystem::path& path,
                       const std::vector<char>& image,
                       const FaultPlan* faults) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
    if (fd.get() < 0) fail_errno(tmp, "open");

    std::size_t budget = image.size();
    if (faults != nullptr && faults->fail_write_after.has_value()) {
      budget = static_cast<std::size_t>(
          std::min<std::uint64_t>(*faults->fail_write_after, image.size()));
    }
    std::size_t written = 0;
    while (written < budget) {
      const ssize_t n =
          ::write(fd.get(), image.data() + written, budget - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail_errno(tmp, "write");
      }
      written += static_cast<std::size_t>(n);
    }
    if (budget < image.size()) {
      // Injected ENOSPC: the partial temp file stays on disk, exactly as
      // a full filesystem would leave it. The commit never happens.
      fail(tmp, "write", "injected ENOSPC after " + std::to_string(budget) +
                             " of " + std::to_string(image.size()) +
                             " bytes");
    }
    if (faults != nullptr && faults->fail_fsync) {
      fail(tmp, "fsync", "injected fsync failure");
    }
    if (::fsync(fd.get()) != 0) fail_errno(tmp, "fsync");
  }

  if (faults != nullptr && faults->crash_before_rename) {
    fail(tmp, "commit", "injected crash before rename (temp file left)");
  }
  if (faults != nullptr && faults->fail_rename) {
    fail(path, "rename", "injected rename failure");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) fail_errno(path, "rename");
  fsync_parent_dir(path);

  if (faults != nullptr) corrupt_committed_file(path, *faults);
}

MappedFile::MappedFile(const std::filesystem::path& path) {
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) fail_errno(path, "open");
  struct stat st {};
  if (::fstat(fd.get(), &st) != 0) fail_errno(path, "fstat");
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ == 0) return;  // nothing to map; data_ stays null, size_ 0
  void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd.get(), 0);
  if (mapped == MAP_FAILED) fail_errno(path, "mmap");
  data_ = static_cast<const char*>(mapped);
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace lina::snap
