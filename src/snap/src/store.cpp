#include "lina/snap/store.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "lina/names/interner.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/prof/prof.hpp"
#include "lina/snap/io.hpp"

namespace lina::snap {

namespace {

using routing::FibEntry;
using routing::Port;

constexpr std::uint16_t kManifestVersion = 1;

[[nodiscard]] double elapsed_ms(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void validate_table_name(const std::string& table) {
  const auto ok = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
  };
  if (table.empty() || table.front() == '.' ||
      !std::all_of(table.begin(), table.end(), ok)) {
    throw SnapFormatError("invalid snapshot table name '" + table +
                          "' (want [A-Za-z0-9_.-]+, not starting with '.')");
  }
}

// --- file image assembly --------------------------------------------------

struct Image {
  std::vector<char> bytes;
  std::vector<SectionRecord> records;
};

/// Lays out header | section table | toc CRC | payloads | footer.
Image build_image(
    SnapHeader header,
    std::vector<std::pair<SectionId, std::vector<char>>> sections) {
  header.section_count = static_cast<std::uint16_t>(sections.size());
  const std::uint64_t payload_start =
      kSnapHeaderBytes + sections.size() * kSectionRecordBytes + 4;
  Image image;
  std::uint64_t offset = payload_start;
  for (const auto& [id, payload] : sections) {
    SectionRecord rec;
    rec.id = id;
    rec.offset = offset;
    rec.bytes = payload.size();
    rec.crc = crc32(0, payload.data(), payload.size());
    image.records.push_back(rec);
    offset += payload.size();
  }
  std::vector<char>& out = image.bytes;
  out.reserve(offset + kSnapFooterBytes);
  encode_header(out, header);
  for (const SectionRecord& rec : image.records) {
    put_u32(out, static_cast<std::uint32_t>(rec.id));
    put_u64(out, rec.offset);
    put_u64(out, rec.bytes);
    put_u32(out, rec.crc);
  }
  put_u32(out, crc32(0, out.data(), out.size()));
  for (const auto& [id, payload] : sections) {
    out.insert(out.end(), payload.begin(), payload.end());
  }
  const std::uint32_t file_crc = crc32(0, out.data(), out.size());
  out.insert(out.end(), kSnapFooterMagic.begin(), kSnapFooterMagic.end());
  put_u32(out, file_crc);
  put_u64(out, out.size() + 8);  // total size once the u64 itself lands
  return image;
}

// --- file validation ------------------------------------------------------

struct Parsed {
  SnapHeader header;
  std::vector<SectionRecord> sections;
};

/// Validates everything outside the payload encodings: header, footer
/// magic/size, table-of-contents CRC, section bounds, per-section CRCs,
/// and finally the whole-file CRC. Per-section checks run before the
/// whole-file one so a localized flip is reported against its section.
Parsed parse_snapshot(const MappedFile& file, const std::string& ctx) {
  const char* data = file.data();
  const std::uint64_t size = file.size();
  Parsed parsed;
  parsed.header = decode_header(data, size, ctx);

  ByteCursor footer(data + (size - kSnapFooterBytes), kSnapFooterBytes,
                    ctx + " footer");
  std::array<char, 4> magic{};
  footer.bytes(magic.data(), magic.size());
  if (magic != kSnapFooterMagic) {
    throw SnapFormatError(ctx +
                          ": footer magic missing (truncated or torn file)");
  }
  const std::uint32_t file_crc = footer.u32();
  const std::uint64_t recorded_size = footer.u64();
  if (recorded_size != size) {
    throw SnapFormatError(ctx + ": footer records " +
                          std::to_string(recorded_size) +
                          " bytes but the file has " + std::to_string(size));
  }

  const std::uint64_t toc_end =
      kSnapHeaderBytes +
      std::uint64_t{parsed.header.section_count} * kSectionRecordBytes;
  ByteCursor toc(data + kSnapHeaderBytes, toc_end - kSnapHeaderBytes + 4,
                 ctx + " section table");
  for (std::uint16_t i = 0; i < parsed.header.section_count; ++i) {
    SectionRecord rec;
    rec.id = static_cast<SectionId>(toc.u32());
    rec.offset = toc.u64();
    rec.bytes = toc.u64();
    rec.crc = toc.u32();
    parsed.sections.push_back(rec);
  }
  if (crc32(0, data, toc_end) != toc.u32()) {
    throw SnapFormatError(ctx + ": section-table CRC mismatch");
  }

  const std::uint64_t payload_end = size - kSnapFooterBytes;
  for (const SectionRecord& rec : parsed.sections) {
    const std::string name =
        "section " + std::to_string(static_cast<std::uint32_t>(rec.id));
    if (rec.offset < toc_end + 4 || rec.offset > payload_end ||
        rec.bytes > payload_end - rec.offset) {
      throw SnapFormatError(ctx + ": " + name +
                            " extends past the payload area (truncated?)");
    }
    if (crc32(0, data + rec.offset, rec.bytes) != rec.crc) {
      throw SnapFormatError(ctx + ": " + name +
                            " CRC mismatch (bit rot or torn write)");
    }
  }
  if (crc32(0, data, payload_end) != file_crc) {
    throw SnapFormatError(ctx + ": whole-file CRC mismatch");
  }
  return parsed;
}

[[nodiscard]] std::pair<const char*, std::uint64_t> section(
    const MappedFile& file, const Parsed& parsed, SectionId id,
    const std::string& ctx) {
  for (const SectionRecord& rec : parsed.sections) {
    if (rec.id == id) return {file.data() + rec.offset, rec.bytes};
  }
  throw SnapFormatError(ctx + ": required section " +
                        std::to_string(static_cast<std::uint32_t>(id)) +
                        " missing");
}

// --- IP FIB codec ---------------------------------------------------------

using IpTrie = net::FrozenIpTrie<FibEntry>;

/// Bit-packs the preorder node array. Freeze invariants carry the
/// compression: child0 is implicitly self+1 (1 flag bit), value slots are
/// preorder-dense (1 flag bit), keys store only their top `len` bits, and
/// child1 is a varint delta past self. The writer re-verifies each
/// invariant so a layout drift becomes a loud error, not a bad file.
std::vector<std::pair<SectionId, std::vector<char>>> encode_ip(
    const IpTrie& trie) {
  BitWriter packed;
  std::uint32_t next_slot = 0;
  const std::span<const IpTrie::Node> nodes = trie.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const IpTrie::Node& n = nodes[i];
    const std::string at = "ip snapshot: node " + std::to_string(i);
    if (n.len > 32 || (n.key & ~net::prefix_mask(n.len)) != 0) {
      throw SnapFormatError(at + " has a non-canonical key");
    }
    const bool has_value = n.value_slot != IpTrie::kNil;
    const bool has0 = n.child0 != IpTrie::kNil;
    const bool has1 = n.child1 != IpTrie::kNil;
    if (has0 && n.child0 != i + 1) {
      throw SnapFormatError(at + " breaks the preorder child0 invariant");
    }
    if (has1 && n.child1 <= i) {
      throw SnapFormatError(at + " breaks the preorder child1 invariant");
    }
    if (has_value && n.value_slot != next_slot) {
      throw SnapFormatError(at + " breaks the dense value-slot invariant");
    }
    packed.bits(n.len, 6);
    if (n.len > 0) packed.bits(n.key >> (32u - n.len), n.len);
    packed.bit(has_value);
    packed.bit(has0);
    packed.bit(has1);
    if (has1) packed.varint(n.child1 - i - 1);
    if (has_value) ++next_slot;
  }
  std::vector<char> values;
  for (const FibEntry& e : trie.values()) {
    put_varint(values, e.port);
    put_u8(values, static_cast<std::uint8_t>(e.route_class));
    put_varint(values, e.path_length);
    put_varint(values, e.med);
  }
  std::vector<std::pair<SectionId, std::vector<char>>> sections;
  sections.emplace_back(SectionId::kIpNodes, packed.finish());
  sections.emplace_back(SectionId::kIpValues, std::move(values));
  return sections;
}

IpTrie decode_ip(const MappedFile& file, const Parsed& parsed,
                 const std::string& ctx) {
  const std::uint64_t node_count = parsed.header.node_count;
  const auto [ndata, nbytes] =
      section(file, parsed, SectionId::kIpNodes, ctx);
  // Every node costs at least 9 bits, so an absurd count cannot pass.
  if (node_count > nbytes * 8 / 9 + 1) {
    throw SnapFormatError(ctx + ": node count " + std::to_string(node_count) +
                          " exceeds what the node section can hold");
  }
  BitReader reader(ndata, nbytes, ctx + " ip-nodes");
  std::vector<IpTrie::Node> nodes;
  nodes.reserve(node_count);
  std::vector<net::Prefix> prefixes;
  std::uint32_t next_slot = 0;
  for (std::uint64_t i = 0; i < node_count; ++i) {
    IpTrie::Node n;
    const std::uint32_t len = reader.bits(6);
    if (len > 32) {
      throw SnapFormatError(ctx + ": node " + std::to_string(i) +
                            " has prefix length " + std::to_string(len));
    }
    n.len = static_cast<std::uint8_t>(len);
    n.key = len == 0 ? 0 : reader.bits(len) << (32u - len);
    const bool has_value = reader.bit();
    const bool has0 = reader.bit();
    const bool has1 = reader.bit();
    if (has0) {
      if (i + 1 >= node_count) {
        throw SnapFormatError(ctx + ": node " + std::to_string(i) +
                              " child0 out of range");
      }
      n.child0 = static_cast<std::uint32_t>(i + 1);
    }
    if (has1) {
      const std::uint64_t child = i + 1 + reader.varint();
      if (child >= node_count) {
        throw SnapFormatError(ctx + ": node " + std::to_string(i) +
                              " child1 out of range");
      }
      n.child1 = static_cast<std::uint32_t>(child);
    }
    if (has_value) {
      n.value_slot = next_slot++;
      prefixes.emplace_back(net::Ipv4Address(n.key), n.len);
    }
    nodes.push_back(n);
  }
  if (next_slot != parsed.header.entry_count) {
    throw SnapFormatError(
        ctx + ": header promises " +
        std::to_string(parsed.header.entry_count) + " entries but nodes carry " +
        std::to_string(next_slot));
  }
  const auto [vdata, vbytes] =
      section(file, parsed, SectionId::kIpValues, ctx);
  ByteCursor cursor(vdata, vbytes, ctx + " ip-values");
  std::vector<FibEntry> values;
  values.reserve(next_slot);
  for (std::uint32_t i = 0; i < next_slot; ++i) {
    FibEntry e;
    const std::uint64_t port = cursor.varint();
    const std::uint8_t cls = cursor.u8();
    const std::uint64_t path_length = cursor.varint();
    const std::uint64_t med = cursor.varint();
    if (port > 0xffffffffull || path_length > 0xffffffffull ||
        med > 0xffffffffull || cls > 2) {
      throw SnapFormatError(ctx + ": entry " + std::to_string(i) +
                            " has out-of-range fields");
    }
    e.port = static_cast<Port>(port);
    e.route_class = static_cast<routing::RouteClass>(cls);
    e.path_length = static_cast<std::uint32_t>(path_length);
    e.med = static_cast<std::uint32_t>(med);
    values.push_back(e);
  }
  if (!cursor.done()) {
    throw SnapFormatError(ctx + ": trailing bytes after the last entry");
  }
  return IpTrie(std::move(nodes), std::move(values), std::move(prefixes));
}

// --- name FIB codec -------------------------------------------------------

using NameTrie = names::FrozenNameTrie<Port>;

/// Serializes spellings (not interner ids): ids are process-local and
/// assignment-order dependent, so the snapshot carries the component
/// strings sorted by spelling — byte-deterministic — and the loader
/// re-interns them and rebuilds the edge keys against the live interner.
std::vector<std::pair<SectionId, std::vector<char>>> encode_name(
    const NameTrie& trie) {
  struct Edge {
    std::uint32_t parent;
    std::uint32_t label;  // global id on write, local id once remapped
    std::uint32_t child;
  };
  std::vector<Edge> edges;
  trie.for_each_edge([&](std::uint32_t parent, std::uint32_t label,
                         std::uint32_t child) {
    edges.push_back({parent, label, child});
  });

  const names::ComponentInterner& interner =
      names::ComponentInterner::global();
  std::vector<std::uint32_t> globals;
  globals.reserve(edges.size());
  for (const Edge& e : edges) globals.push_back(e.label);
  std::sort(globals.begin(), globals.end());
  globals.erase(std::unique(globals.begin(), globals.end()), globals.end());
  std::sort(globals.begin(), globals.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return interner.spelling(a) < interner.spelling(b);
            });
  std::unordered_map<std::uint32_t, std::uint32_t> local;
  local.reserve(globals.size());
  for (std::uint32_t i = 0; i < globals.size(); ++i) local[globals[i]] = i;

  std::vector<char> components;
  put_varint(components, globals.size());
  for (const std::uint32_t g : globals) {
    const std::string_view spelling = interner.spelling(g);
    put_varint(components, spelling.size());
    components.insert(components.end(), spelling.begin(), spelling.end());
  }

  for (Edge& e : edges) e.label = local.at(e.label);
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.parent != b.parent ? a.parent < b.parent : a.label < b.label;
  });
  std::vector<char> packed_edges;
  put_varint(packed_edges, edges.size());
  std::uint32_t prev_parent = 0;
  for (const Edge& e : edges) {
    put_varint(packed_edges, e.parent - prev_parent);
    put_varint(packed_edges, e.label);
    put_varint(packed_edges, e.child);
    prev_parent = e.parent;
  }

  BitWriter packed_values;
  for (const std::optional<Port>& v : trie.raw_values()) {
    packed_values.bit(v.has_value());
    if (v.has_value()) packed_values.varint(*v);
  }

  std::vector<std::pair<SectionId, std::vector<char>>> sections;
  sections.emplace_back(SectionId::kComponents, std::move(components));
  sections.emplace_back(SectionId::kNameEdges, std::move(packed_edges));
  sections.emplace_back(SectionId::kNameValues, packed_values.finish());
  return sections;
}

NameTrie decode_name(const MappedFile& file, const Parsed& parsed,
                     const std::string& ctx) {
  const std::uint64_t node_count = parsed.header.node_count;

  const auto [cdata, cbytes] =
      section(file, parsed, SectionId::kComponents, ctx);
  ByteCursor comps(cdata, cbytes, ctx + " components");
  const std::uint64_t comp_count = comps.varint();
  if (comp_count > cbytes) {
    throw SnapFormatError(ctx + ": component count " +
                          std::to_string(comp_count) +
                          " exceeds what the section can hold");
  }
  names::ComponentInterner& interner = names::ComponentInterner::global();
  std::vector<std::uint32_t> global_of(comp_count);
  std::string spelling;
  for (std::uint64_t i = 0; i < comp_count; ++i) {
    const std::uint64_t len = comps.varint();
    if (len > comps.remaining()) {
      throw SnapFormatError(ctx + ": component " + std::to_string(i) +
                            " spelling truncated");
    }
    spelling.resize(len);
    comps.bytes(spelling.data(), len);
    global_of[i] = interner.intern(spelling);
  }
  if (!comps.done()) {
    throw SnapFormatError(ctx + ": trailing bytes after component table");
  }

  const auto [edata, ebytes] =
      section(file, parsed, SectionId::kNameEdges, ctx);
  ByteCursor packed_edges(edata, ebytes, ctx + " edges");
  const std::uint64_t edge_count = packed_edges.varint();
  if (edge_count > ebytes) {
    throw SnapFormatError(ctx + ": edge count " + std::to_string(edge_count) +
                          " exceeds what the section can hold");
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> edges;
  edges.reserve(edge_count);
  std::uint64_t parent = 0;
  for (std::uint64_t i = 0; i < edge_count; ++i) {
    parent += packed_edges.varint();
    const std::uint64_t label = packed_edges.varint();
    const std::uint64_t child = packed_edges.varint();
    if (parent >= node_count || label >= comp_count || child == 0 ||
        child >= node_count) {
      throw SnapFormatError(ctx + ": edge " + std::to_string(i) +
                            " references an out-of-range node or component");
    }
    edges.emplace_back(
        names::detail::edge_key(static_cast<std::uint32_t>(parent),
                                global_of[label]),
        static_cast<std::uint32_t>(child));
  }
  if (!packed_edges.done()) {
    throw SnapFormatError(ctx + ": trailing bytes after edge table");
  }

  const auto [vdata, vbytes] =
      section(file, parsed, SectionId::kNameValues, ctx);
  if (node_count > vbytes * 8) {
    throw SnapFormatError(ctx + ": node count " + std::to_string(node_count) +
                          " exceeds the value bitmap");
  }
  BitReader values_reader(vdata, vbytes, ctx + " values");
  std::vector<std::optional<Port>> values(node_count);
  std::uint64_t entries = 0;
  for (std::uint64_t i = 0; i < node_count; ++i) {
    if (!values_reader.bit()) continue;
    const std::uint64_t port = values_reader.varint();
    if (port > 0xffffffffull) {
      throw SnapFormatError(ctx + ": node " + std::to_string(i) +
                            " port out of range");
    }
    values[i] = static_cast<Port>(port);
    ++entries;
  }
  if (entries != parsed.header.entry_count) {
    throw SnapFormatError(ctx + ": header promises " +
                          std::to_string(parsed.header.entry_count) +
                          " entries but the value bitmap carries " +
                          std::to_string(entries));
  }
  return NameTrie::assemble(edges, std::move(values),
                            static_cast<std::size_t>(entries));
}

// --- manifest codec -------------------------------------------------------

std::vector<char> encode_manifest(const Manifest& m) {
  std::vector<char> out;
  out.insert(out.end(), kManifestMagic.begin(), kManifestMagic.end());
  put_u16(out, kManifestVersion);
  put_u16(out, kSnapEndianMarker);
  put_u64(out, m.generation);
  put_varint(out, m.tables.size());
  for (const ManifestEntry& e : m.tables) {
    put_varint(out, e.table.size());
    out.insert(out.end(), e.table.begin(), e.table.end());
    put_u16(out, static_cast<std::uint16_t>(e.kind));
    put_u64(out, e.generation);
  }
  put_u32(out, crc32(0, out.data(), out.size()));
  return out;
}

Manifest decode_manifest(const MappedFile& file, const std::string& ctx) {
  if (file.size() < 4 + 2 + 2 + 8 + 1 + 4) {
    throw SnapFormatError(ctx + ": manifest of " +
                          std::to_string(file.size()) +
                          " bytes is shorter than the fixed fields");
  }
  const std::uint64_t body = file.size() - 4;
  ByteCursor crc_cursor(file.data() + body, 4, ctx + " crc");
  if (crc32(0, file.data(), body) != crc_cursor.u32()) {
    throw SnapFormatError(ctx + ": manifest CRC mismatch");
  }
  ByteCursor cursor(file.data(), body, ctx);
  std::array<char, 4> magic{};
  cursor.bytes(magic.data(), magic.size());
  if (magic != kManifestMagic) {
    throw SnapFormatError(ctx + ": bad magic (not a lina::snap manifest)");
  }
  const std::uint16_t version = cursor.u16();
  if (version != kManifestVersion) {
    throw SnapFormatError(ctx + ": unsupported manifest version " +
                          std::to_string(version));
  }
  if (cursor.u16() != kSnapEndianMarker) {
    throw SnapFormatError(ctx + ": endianness marker mismatch");
  }
  Manifest m;
  m.generation = cursor.u64();
  const std::uint64_t count = cursor.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    ManifestEntry e;
    const std::uint64_t len = cursor.varint();
    if (len > cursor.remaining()) {
      throw SnapFormatError(ctx + ": table name " + std::to_string(i) +
                            " truncated");
    }
    e.table.resize(len);
    cursor.bytes(e.table.data(), len);
    const std::uint16_t kind = cursor.u16();
    if (kind != static_cast<std::uint16_t>(SnapKind::kIpFib) &&
        kind != static_cast<std::uint16_t>(SnapKind::kNameFib)) {
      throw SnapFormatError(ctx + ": unknown snapshot kind " +
                            std::to_string(kind));
    }
    e.kind = static_cast<SnapKind>(kind);
    e.generation = cursor.u64();
    m.tables.push_back(std::move(e));
  }
  if (!cursor.done()) {
    throw SnapFormatError(ctx + ": trailing bytes after the table list");
  }
  return m;
}

// --- load-side glue -------------------------------------------------------

struct Opened {
  MappedFile file;
  Parsed parsed;
  std::string ctx;
};

/// Resolves a table through the manifest, maps its committed file, and
/// runs all structural validation; throws SnapFormatError on any problem.
Opened open_table(const SnapshotStore& store, const std::string& table,
                  SnapKind want) {
  const Manifest m = store.manifest();
  const ManifestEntry* entry = m.find(table);
  if (entry == nullptr) {
    throw SnapFormatError(store.dir().string() +
                          ": no committed snapshot for table '" + table + "'");
  }
  if (entry->kind != want) {
    throw SnapFormatError(store.dir().string() + ": table '" + table +
                          "' holds a different snapshot kind");
  }
  const std::filesystem::path path =
      store.table_path(table, entry->generation);
  MappedFile file(path);
  std::string ctx = path.string();
  Parsed parsed = parse_snapshot(file, ctx);
  if (parsed.header.kind != want) {
    throw SnapFormatError(ctx + ": header kind disagrees with the manifest");
  }
  if (parsed.header.generation != entry->generation) {
    throw SnapFormatError(ctx + ": header generation " +
                          std::to_string(parsed.header.generation) +
                          " but the manifest expects " +
                          std::to_string(entry->generation));
  }
  return {std::move(file), std::move(parsed), std::move(ctx)};
}

}  // namespace

SnapshotStore::SnapshotStore(std::filesystem::path dir, FaultPlan faults)
    : dir_(std::move(dir)), faults_(std::move(faults)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw SnapIoError(dir_.string() +
                      ": cannot create snapshot directory: " + ec.message());
  }
}

std::filesystem::path SnapshotStore::manifest_path() const {
  return dir_ / "MANIFEST.lsnp";
}

std::filesystem::path SnapshotStore::table_path(
    const std::string& table, std::uint64_t generation) const {
  return dir_ / (table + ".g" + std::to_string(generation) + ".lsnp");
}

Manifest SnapshotStore::manifest() const {
  const std::filesystem::path path = manifest_path();
  if (!std::filesystem::exists(path)) return Manifest{};
  const MappedFile file(path);
  return decode_manifest(file, path.string());
}

SavedInfo SnapshotStore::commit(
    const std::string& table, SnapHeader header,
    std::vector<std::pair<SectionId, std::vector<char>>> sections) {
  validate_table_name(table);
  const auto start = std::chrono::steady_clock::now();
  const SnapKind kind = header.kind;
  Manifest m;
  try {
    m = manifest();
  } catch (const SnapFormatError&) {
    m = Manifest{};  // a corrupt manifest resets the store
  }
  const std::uint64_t generation = m.generation + 1;
  header.generation = generation;
  Image image = build_image(header, std::move(sections));
  const std::filesystem::path path = table_path(table, generation);
  atomic_write_file(path, image.bytes,
                    faults_.empty() ? nullptr : &faults_);
  if (faults_.crash_before_manifest) {
    throw SnapIoError(path.string() +
                      ": injected crash before manifest commit "
                      "(data file committed, manifest stale)");
  }
  std::uint64_t stale_generation = 0;
  ManifestEntry* existing = nullptr;
  for (ManifestEntry& e : m.tables) {
    if (e.table == table) {
      existing = &e;
      break;
    }
  }
  if (existing != nullptr) {
    stale_generation = existing->generation;
    existing->kind = kind;
    existing->generation = generation;
  } else {
    m.tables.push_back({table, kind, generation});
  }
  m.generation = generation;
  atomic_write_file(manifest_path(), encode_manifest(m));
  if (existing != nullptr && stale_generation != generation) {
    std::error_code ec;
    std::filesystem::remove(table_path(table, stale_generation), ec);
  }
  obs::metric::snap_saves().add();
  obs::metric::snap_bytes_written().add(image.bytes.size());
  obs::metric::snap_snapshot_bytes().set(
      static_cast<double>(image.bytes.size()));
  obs::metric::snap_save_ms().record(elapsed_ms(start));
  return SavedInfo{path, image.bytes.size(), generation,
                   std::move(image.records)};
}

SavedInfo SnapshotStore::save_ip_fib(const std::string& table,
                                     const routing::FrozenFib& fib) {
  PROF_SPAN("lina.snap.save");
  SnapHeader header;
  header.kind = SnapKind::kIpFib;
  header.entry_count = fib.trie().size();
  header.node_count = fib.trie().node_count();
  return commit(table, header, encode_ip(fib.trie()));
}

SavedInfo SnapshotStore::save_name_fib(const std::string& table,
                                       const routing::FrozenNameFib& fib) {
  PROF_SPAN("lina.snap.save");
  SnapHeader header;
  header.kind = SnapKind::kNameFib;
  header.entry_count = fib.trie().size();
  header.node_count = fib.trie().node_slots();
  return commit(table, header, encode_name(fib.trie()));
}

routing::FrozenFib SnapshotStore::load_ip_fib(const std::string& table) const {
  PROF_SPAN("lina.snap.load");
  const auto start = std::chrono::steady_clock::now();
  Opened opened = open_table(*this, table, SnapKind::kIpFib);
  IpTrie trie = decode_ip(opened.file, opened.parsed, opened.ctx);
  obs::metric::snap_loads().add();
  obs::metric::snap_load_ms().record(elapsed_ms(start));
  return routing::FrozenFib(std::move(trie));
}

routing::FrozenNameFib SnapshotStore::load_name_fib(
    const std::string& table) const {
  PROF_SPAN("lina.snap.load");
  const auto start = std::chrono::steady_clock::now();
  Opened opened = open_table(*this, table, SnapKind::kNameFib);
  NameTrie trie = decode_name(opened.file, opened.parsed, opened.ctx);
  obs::metric::snap_loads().add();
  obs::metric::snap_load_ms().record(elapsed_ms(start));
  return routing::FrozenNameFib(std::move(trie));
}

}  // namespace lina::snap

namespace lina::routing {

FrozenFib FrozenFib::load_or_rebuild(const std::filesystem::path& dir,
                                     const std::string& table,
                                     const Fib& live) {
  try {
    const snap::SnapshotStore store(dir);
    return store.load_ip_fib(table);
  } catch (const snap::SnapFormatError&) {
    obs::metric::snap_load_failures().add();
    obs::metric::snap_fallback_rebuilds().add();
    return live.freeze();
  }
}

FrozenNameFib FrozenNameFib::load_or_rebuild(const std::filesystem::path& dir,
                                             const std::string& table,
                                             const NameFib& live) {
  try {
    const snap::SnapshotStore store(dir);
    return store.load_name_fib(table);
  } catch (const snap::SnapFormatError&) {
    obs::metric::snap_load_failures().add();
    obs::metric::snap_fallback_rebuilds().add();
    return live.freeze();
  }
}

}  // namespace lina::routing
