#pragma once

// Crash-safe file primitives for the snapshot store: atomic whole-file
// publication (temp file + fsync + rename + directory fsync) and
// read-only memory mapping. All failures — real or injected via a
// FaultPlan — surface as SnapIoError naming the file and the operation.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "lina/snap/fault.hpp"
#include "lina/snap/format.hpp"

namespace lina::snap {

/// Durably publishes `image` at `path`: writes `path`'s sibling temp
/// file, fsyncs it, atomically renames it over `path`, and fsyncs the
/// containing directory so the rename itself is durable. Readers
/// therefore observe either the complete previous file or the complete
/// new one — never a partial write. `faults` (optional) injects the
/// write-side failure modes; post-commit corruptions are applied to the
/// final file after a successful publish.
void atomic_write_file(const std::filesystem::path& path,
                       const std::vector<char>& image,
                       const FaultPlan* faults = nullptr);

/// A read-only memory-mapped file. The mapping lives for the object's
/// lifetime; an empty file maps to a valid zero-length view.
class MappedFile {
 public:
  explicit MappedFile(const std::filesystem::path& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const char* data() const { return data_; }
  [[nodiscard]] std::uint64_t size() const { return size_; }

 private:
  const char* data_ = nullptr;
  std::uint64_t size_ = 0;
};

}  // namespace lina::snap
