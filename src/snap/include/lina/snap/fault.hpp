#pragma once

// Deterministic fault injection for the snapshot I/O layer.
//
// A FaultPlan is a declarative description of what goes wrong during (or
// after) one save: the store's file layer consults it at every write,
// fsync, and rename, and applies the post-commit corruptions to the
// final file. Tests drive a seeded matrix of plans and assert the
// recovery contract: every injected fault is either detected at write
// time (a named SnapIoError, durable state untouched or cleanly absent)
// or detected at load time (a named SnapFormatError, after which
// load_or_rebuild falls back to the live table) — never UB, never a
// silently wrong lookup.

#include <cstdint>
#include <optional>
#include <vector>

namespace lina::snap {

/// Injected failure modes for one snapshot save. Default-constructed
/// plans inject nothing (the store treats an all-default plan exactly
/// like no plan at all).
struct FaultPlan {
  /// ENOSPC-style short write: the temp file accepts only the first N
  /// bytes, then the write fails. The partial temp file is left behind —
  /// exactly what a full disk leaves — and save throws SnapIoError.
  std::optional<std::uint64_t> fail_write_after;

  /// fsync of the temp file reports failure (battery-backed cache gone
  /// bad, NFS hiccup). Save throws SnapIoError before the rename, so the
  /// previous generation stays current.
  bool fail_fsync = false;

  /// The atomic rename fails (EXDEV, permission flip). Save throws
  /// SnapIoError; the fully-written temp file is left behind.
  bool fail_rename = false;

  /// Simulated process death after the temp file is written but before
  /// the rename: save stops (throws SnapIoError naming the crash) with
  /// the temp file on disk and the manifest untouched.
  bool crash_before_rename = false;

  /// Simulated process death after the data file is renamed into place
  /// but before the manifest commit: the new file exists, the manifest
  /// still names the previous generation.
  bool crash_before_manifest = false;

  // --- post-commit corruption (what a later reader finds) ---------------

  /// Truncate the committed snapshot file to this many bytes — a torn
  /// write or lost tail cache flush.
  std::optional<std::uint64_t> truncate_to;

  /// Flip these absolute bit offsets in the committed snapshot file —
  /// media decay / cosmic-ray bit rot.
  std::vector<std::uint64_t> flip_bits;

  [[nodiscard]] bool empty() const {
    return !fail_write_after.has_value() && !fail_fsync && !fail_rename &&
           !crash_before_rename && !crash_before_manifest &&
           !truncate_to.has_value() && flip_bits.empty();
  }
};

}  // namespace lina::snap
