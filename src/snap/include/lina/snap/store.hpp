#pragma once

// The durable FIB snapshot store (DESIGN.md §4f).
//
// A store is a directory holding one generation-numbered manifest
// (MANIFEST.lsnp) plus one snapshot file per saved table
// (`<table>.g<generation>.lsnp`). Saves are crash-safe: the data file is
// published with temp-file + fsync + atomic-rename + directory-fsync,
// and only then is the manifest (written the same way) advanced to the
// new generation. A crash between the two commits leaves the manifest
// naming the previous generation's file, which is still on disk — the
// store always loads a complete snapshot or reports a named error,
// never a torn one.
//
// Loads mmap the file and validate header, footer, table-of-contents
// CRC, and every section CRC before decoding a byte of payload; any
// mismatch throws SnapFormatError naming the file and the failed check.
// `FrozenFib::load_or_rebuild` / `FrozenNameFib::load_or_rebuild` (whose
// definitions live here) wrap that contract into graceful recovery:
// corruption degrades to a rebuild from the live table, counted by
// lina.snap.fallback_rebuilds.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "lina/routing/fib.hpp"
#include "lina/routing/name_fib.hpp"
#include "lina/snap/fault.hpp"
#include "lina/snap/format.hpp"

namespace lina::snap {

/// What one committed save produced — enough for callers to report sizes
/// and for the fault-matrix tests to target every section boundary.
struct SavedInfo {
  std::filesystem::path path;
  std::uint64_t bytes = 0;
  std::uint64_t generation = 0;
  std::vector<SectionRecord> sections;
};

/// One manifest row: a committed table and the generation of its file.
struct ManifestEntry {
  std::string table;
  SnapKind kind = SnapKind::kIpFib;
  std::uint64_t generation = 0;
};

/// The decoded manifest: the store-wide generation counter plus the set
/// of committed tables.
struct Manifest {
  std::uint64_t generation = 0;
  std::vector<ManifestEntry> tables;

  [[nodiscard]] const ManifestEntry* find(const std::string& table) const {
    for (const ManifestEntry& e : tables) {
      if (e.table == table) return &e;
    }
    return nullptr;
  }
};

class SnapshotStore {
 public:
  /// Opens (creating the directory if needed) the store at `dir`.
  /// `faults` — normally empty — is consulted on every data-file save;
  /// see FaultPlan.
  explicit SnapshotStore(std::filesystem::path dir, FaultPlan faults = {});

  /// Serializes and durably commits a frozen table under `table`,
  /// advancing the manifest generation. Throws SnapIoError on (real or
  /// injected) I/O failure, leaving the previous generation current.
  SavedInfo save_ip_fib(const std::string& table,
                        const routing::FrozenFib& fib);
  SavedInfo save_name_fib(const std::string& table,
                          const routing::FrozenNameFib& fib);

  /// Loads the committed snapshot for `table`, validating every CRC and
  /// structural invariant before use. Throws SnapFormatError (naming the
  /// file and the failed check) on any problem: missing table, kind or
  /// generation mismatch, truncation, bit rot, unsupported version.
  [[nodiscard]] routing::FrozenFib load_ip_fib(const std::string& table) const;
  [[nodiscard]] routing::FrozenNameFib load_name_fib(
      const std::string& table) const;

  /// Reads and validates the manifest; a missing manifest is an empty
  /// store (generation 0, no tables). Throws SnapFormatError if present
  /// but corrupt.
  [[nodiscard]] Manifest manifest() const;

  [[nodiscard]] std::filesystem::path manifest_path() const;
  [[nodiscard]] std::filesystem::path table_path(
      const std::string& table, std::uint64_t generation) const;
  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  /// Shared save tail: assembles the file image around the encoded
  /// sections, publishes it, then advances the manifest.
  SavedInfo commit(const std::string& table, SnapHeader header,
                   std::vector<std::pair<SectionId, std::vector<char>>>
                       sections);

  std::filesystem::path dir_;
  FaultPlan faults_;
};

}  // namespace lina::snap
