#pragma once

// On-disk layout of the lina::snap durable FIB snapshot store
// (DESIGN.md §4f).
//
// A snapshot file holds one frozen forwarding table:
//
//     [ FileHeader | section table | toc CRC | section payloads | Footer ]
//
// with all multi-byte integers little-endian on disk regardless of host
// byte order (the header carries an endianness marker, same idiom as the
// lina::trace shards). Every section carries its own CRC32 in the table
// and the footer carries a whole-file CRC32 plus the total size, so any
// truncation, torn write, or flipped bit surfaces as a named
// SnapFormatError — never undefined behaviour, never a silently wrong
// lookup.
//
// Node arrays are bit-packed (6-bit prefix lengths, 1-bit child/value
// flags, key bits only up to the prefix length) and pointers/ids are
// varint-coded deltas, so a snapshot is substantially smaller than the
// in-memory frozen table it round-trips.

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lina::snap {

/// Any structural problem with a snapshot file: bad magic, unsupported
/// version, wrong endianness, truncation, CRC mismatch, out-of-range
/// counts, inconsistent manifest. The message always names the file and
/// the check that failed. Catching this (and falling back to a rebuild)
/// is the whole-load-path contract — see load_or_rebuild.
class SnapFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An I/O failure while writing or mapping a snapshot (short write /
/// ENOSPC, failed fsync, failed rename, mmap failure) — injected faults
/// included. Derives from SnapFormatError so one catch handles the whole
/// durability surface.
class SnapIoError : public SnapFormatError {
 public:
  using SnapFormatError::SnapFormatError;
};

inline constexpr std::array<char, 4> kSnapMagic = {'L', 'S', 'N', 'P'};
inline constexpr std::array<char, 4> kSnapFooterMagic = {'L', 'S', 'N', 'E'};
inline constexpr std::array<char, 4> kManifestMagic = {'L', 'S', 'N', 'M'};
inline constexpr std::uint16_t kSnapFormatVersion = 1;
/// Written as a u16; a byte-swapped read yields 0xFF00 and is rejected
/// with an endianness-specific message.
inline constexpr std::uint16_t kSnapEndianMarker = 0x00FF;

/// What a snapshot file stores (header `kind` field).
enum class SnapKind : std::uint16_t {
  kIpFib = 1,    // FrozenIpTrie<routing::FibEntry>
  kNameFib = 2,  // FrozenNameTrie<routing::Port> + its component table
};

/// Section ids (section-table `id` field).
enum class SectionId : std::uint32_t {
  kIpNodes = 1,     // bit-packed preorder Patricia nodes
  kIpValues = 2,    // FibEntry payloads in value-slot order
  kComponents = 16, // name-component spellings, local-id order
  kNameEdges = 17,  // (parent, local-label) -> child, delta-varint coded
  kNameValues = 18, // node-id-indexed optional ports
};

/// Fixed-size (48-byte) snapshot file header.
struct SnapHeader {
  std::uint16_t version = kSnapFormatVersion;
  SnapKind kind = SnapKind::kIpFib;
  std::uint16_t section_count = 0;
  std::uint64_t entry_count = 0;  // stored routable entries
  std::uint64_t node_count = 0;   // trie nodes (IP) / arena slots (names)
  std::uint64_t generation = 0;   // manifest generation that committed it
};

/// One record of the section table: where a section's payload lives and
/// the CRC32 it must hash to.
struct SectionRecord {
  SectionId id = SectionId::kIpNodes;
  std::uint64_t offset = 0;  // absolute byte offset of the payload
  std::uint64_t bytes = 0;   // payload length
  std::uint32_t crc = 0;     // CRC32 of exactly [offset, offset + bytes)
};

inline constexpr std::size_t kSnapHeaderBytes = 48;
inline constexpr std::size_t kSectionRecordBytes = 24;
inline constexpr std::size_t kSnapFooterBytes = 16;

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — bit-compatible with
/// the lina::trace shard checksum.
[[nodiscard]] std::uint32_t crc32(std::uint32_t crc, const void* data,
                                  std::size_t size);

// --- byte-level encoding --------------------------------------------------

void put_u8(std::vector<char>& out, std::uint8_t v);
void put_u16(std::vector<char>& out, std::uint16_t v);
void put_u32(std::vector<char>& out, std::uint32_t v);
void put_u64(std::vector<char>& out, std::uint64_t v);
/// LEB128 (7 bits per byte, most-significant-bit continuation).
void put_varint(std::vector<char>& out, std::uint64_t v);

/// Bounded sequential decoder over a byte range; every read is
/// bounds-checked and overruns throw SnapFormatError naming `context`.
class ByteCursor {
 public:
  ByteCursor(const char* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - offset_; }
  [[nodiscard]] bool done() const { return offset_ == size_; }
  [[nodiscard]] const std::string& context() const { return context_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  void bytes(void* into, std::size_t n);

 private:
  [[noreturn]] void overrun(const char* what) const;

  const char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  std::string context_;
};

// --- bit-level encoding ---------------------------------------------------

/// MSB-first bit packer over a byte vector — the packing layer behind the
/// node sections (cf. the LINNE bit_stream idiom). `finish()` pads the
/// final partial byte with zeros.
class BitWriter {
 public:
  /// Appends the low `count` bits of `value`, most significant first.
  void bits(std::uint32_t value, unsigned count);
  void bit(bool value) { bits(value ? 1u : 0u, 1); }
  /// Bit-level LEB128: 8-bit groups of {continuation, 7 value bits}.
  void varint(std::uint64_t v);
  /// Pads to a byte boundary and returns the packed bytes.
  [[nodiscard]] std::vector<char> finish();

 private:
  std::vector<char> bytes_;
  std::uint8_t pending_ = 0;
  unsigned pending_bits_ = 0;
};

/// MSB-first bit reader mirroring BitWriter; overruns throw
/// SnapFormatError naming `context`.
class BitReader {
 public:
  BitReader(const char* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  [[nodiscard]] std::uint32_t bits(unsigned count);
  [[nodiscard]] bool bit() { return bits(1) != 0; }
  [[nodiscard]] std::uint64_t varint();

 private:
  const char* data_;
  std::size_t size_;
  std::size_t bit_offset_ = 0;
  std::string context_;
};

/// Serializes the header into exactly kSnapHeaderBytes.
void encode_header(std::vector<char>& out, const SnapHeader& header);

/// Parses and validates a header (magic, version, endianness, size
/// sanity against `file_size`). `context` names the file for errors.
[[nodiscard]] SnapHeader decode_header(const char* data,
                                       std::uint64_t file_size,
                                       const std::string& context);

}  // namespace lina::snap
