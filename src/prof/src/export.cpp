#include "lina/prof/export.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "lina/obs/json.hpp"

namespace lina::prof {

namespace {

using obs::Json;

double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

ProfileReport collect() {
  ProfileReport report;
  report.spans = Profiler::instance().drain();
  report.threads = Profiler::instance().thread_profiles();
  return report;
}

std::string export_chrome_trace(const ProfileReport& report) {
  const auto& counter_names = attributed_counter_names();
  Json events = Json::array();
  // Thread-name metadata first, so viewers label lanes before any span.
  for (const ThreadProfile& t : report.threads) {
    Json meta = Json::object();
    meta["ph"] = Json("M");
    meta["name"] = Json("thread_name");
    meta["pid"] = Json(1);
    meta["tid"] = Json(static_cast<std::uint64_t>(t.thread));
    Json args = Json::object();
    args["name"] = Json(t.thread == 1 ? "lina main"
                                      : "lina worker " +
                                            std::to_string(t.thread - 1));
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }
  for (const SpanRecord& span : report.spans) {
    Json event = Json::object();
    event["ph"] = Json("X");
    event["name"] = Json(span.name);
    event["cat"] = Json("lina");
    event["ts"] = Json(to_us(span.begin_ns));
    event["dur"] = Json(to_us(span.end_ns - span.begin_ns));
    event["pid"] = Json(1);
    event["tid"] = Json(static_cast<std::uint64_t>(span.thread));
    Json args = Json::object();
    args["span"] = Json(span.id);
    args["parent"] = Json(span.parent);
    args["depth"] = Json(static_cast<std::uint64_t>(span.depth));
    if (span.tsc_end >= span.tsc_begin && span.tsc_end != 0) {
      args["tsc_cycles"] = Json(span.tsc_end - span.tsc_begin);
    }
    for (std::size_t i = 0; i < kAttributedCounters; ++i) {
      if (span.counter_deltas[i] != 0) {
        args[counter_names[i]] = Json(span.counter_deltas[i]);
      }
    }
    event["args"] = std::move(args);
    events.push_back(std::move(event));
  }
  Json out = Json::object();
  out["traceEvents"] = std::move(events);
  out["displayTimeUnit"] = Json("ms");
  Json other = Json::object();
  other["spans"] = Json(static_cast<std::uint64_t>(report.spans.size()));
  other["spans_dropped"] = Json(report.dropped_total());
  Json threads = Json::array();
  for (const ThreadProfile& t : report.threads) {
    Json entry = Json::object();
    entry["tid"] = Json(static_cast<std::uint64_t>(t.thread));
    entry["recorded"] = Json(t.recorded);
    entry["dropped"] = Json(t.dropped);
    threads.push_back(std::move(entry));
  }
  other["threads"] = std::move(threads);
  out["otherData"] = std::move(other);
  return out.dump(1) + "\n";
}

std::string export_folded(const ProfileReport& report) {
  // Inclusive duration per span, minus the inclusive durations of direct
  // children = self time; attribute it to the parent-chain stack.
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  by_id.reserve(report.spans.size());
  for (const SpanRecord& span : report.spans) by_id.emplace(span.id, &span);

  std::unordered_map<std::uint64_t, std::uint64_t> child_ns;
  for (const SpanRecord& span : report.spans) {
    if (span.parent != 0 && by_id.count(span.parent) != 0) {
      child_ns[span.parent] += span.end_ns - span.begin_ns;
    }
  }

  std::map<std::string, std::uint64_t> folded;  // stack -> self us
  for (const SpanRecord& span : report.spans) {
    const std::uint64_t inclusive = span.end_ns - span.begin_ns;
    const auto children = child_ns.find(span.id);
    const std::uint64_t self_ns =
        children == child_ns.end()
            ? inclusive
            : (inclusive > children->second ? inclusive - children->second
                                            : 0);
    // Walk to the root; a dropped parent record truncates the stack.
    std::vector<const char*> frames;
    frames.push_back(span.name);
    std::uint64_t parent = span.parent;
    while (parent != 0) {
      const auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      frames.push_back(it->second->name);
      parent = it->second->parent;
    }
    std::string stack;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      if (!stack.empty()) stack += ';';
      stack += *it;
    }
    folded[stack] += (self_ns + 500) / 1000;  // round to us
  }

  std::string out;
  for (const auto& [stack, self_us] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(self_us);
    out += '\n';
  }
  return out;
}

std::size_t validate_chrome_trace(const std::string& json_text) {
  const Json document = Json::parse(json_text);
  if (!document.is_object())
    throw std::runtime_error("chrome trace: top level is not an object");
  const Json* events = document.find("traceEvents");
  if (events == nullptr || !events->is_array())
    throw std::runtime_error("chrome trace: missing traceEvents array");
  std::size_t span_events = 0;
  for (const Json& event : events->items()) {
    if (!event.is_object())
      throw std::runtime_error("chrome trace: event is not an object");
    const Json& ph = event.at("ph");
    if (!ph.is_string())
      throw std::runtime_error("chrome trace: event ph is not a string");
    if (ph.as_string() == "M") continue;  // metadata
    if (ph.as_string() != "X")
      throw std::runtime_error("chrome trace: unexpected event phase '" +
                               ph.as_string() + "'");
    for (const char* key : {"name", "cat", "ts", "dur", "pid", "tid"}) {
      if (event.find(key) == nullptr)
        throw std::runtime_error(
            std::string("chrome trace: span event missing '") + key + "'");
    }
    if (!event.at("name").is_string())
      throw std::runtime_error("chrome trace: span name is not a string");
    const double dur = event.at("dur").as_number();
    const double ts = event.at("ts").as_number();
    if (!(dur >= 0.0) || !(ts >= 0.0))
      throw std::runtime_error(
          "chrome trace: negative ts/dur on span '" +
          event.at("name").as_string() + "'");
    ++span_events;
  }
  return span_events;
}

std::vector<std::string> span_layers(const ProfileReport& report) {
  std::set<std::string> layers;
  for (const SpanRecord& span : report.spans) {
    const std::string_view name(span.name);
    const std::size_t first = name.find('.');
    if (first == std::string_view::npos) continue;
    const std::size_t second = name.find('.', first + 1);
    const std::string_view layer =
        name.substr(first + 1, second == std::string_view::npos
                                   ? std::string_view::npos
                                   : second - first - 1);
    layers.emplace(layer);
  }
  return {layers.begin(), layers.end()};
}

}  // namespace lina::prof
