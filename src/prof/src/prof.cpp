#include "lina/prof/prof.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "lina/obs/registry.hpp"

namespace lina::prof {

namespace detail {

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

std::uint64_t tsc_now() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t value;
  asm volatile("mrs %0, cntvct_el0" : "=r"(value));
  return value;
#else
  return 0;
#endif
}

ThreadState& thread_state() noexcept {
  thread_local ThreadState state;
  return state;
}

}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Process-wide profiler state. Leaked (like the obs registry and the
/// exec pool) so thread rings outlive every instrumented thread and the
/// at-exit exporters.
struct GlobalState {
  std::mutex mutex;  // guards rings (growth/reset) and capacity
  std::vector<std::unique_ptr<detail::ThreadRing>> rings;
  std::size_t capacity = Profiler::kDefaultRingCapacity;
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::uint64_t> epoch_ns{0};
  std::atomic<std::uint64_t> epoch_tsc{0};
  // ns per TSC tick, calibrated once at first enable; 0 means "no usable
  // cycle counter — fall back to steady_clock on every span boundary".
  std::atomic<double> ns_per_tick{0.0};
};

GlobalState& global() {
  static GlobalState* state = new GlobalState();
  return *state;
}

/// Calibrate the TSC against steady_clock. With a valid ratio a span
/// boundary costs one rdtsc instead of a clock_gettime call — the
/// difference between ~30ns and ~85ns per span on a VM. A ~200µs window
/// bounds the ratio error to ~1e-4 (a 1ms drift over a 10s run,
/// invisible at trace resolution). Runs once, before the enabled flag is
/// set, so no span ever observes a half-initialised clock.
double calibrate_ns_per_tick() {
  // -1 is the "tried, unusable" sentinel: now_ns() only takes the TSC
  // path for ratios > 0, and enable() will not re-spin the calibration.
  if (detail::tsc_now() == 0) return -1.0;  // no cycle counter on this arch
  const std::uint64_t t0 = steady_ns();
  const std::uint64_t c0 = detail::tsc_now();
  std::uint64_t t1 = t0;
  std::uint64_t c1 = c0;
  while (t1 - t0 < 200'000) {
    t1 = steady_ns();
    c1 = detail::tsc_now();
  }
  if (c1 <= c0) return -1.0;  // TSC not advancing (paused/emulated)
  return static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0);
}

detail::ThreadRing& register_ring() {
  GlobalState& state = global();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.rings.push_back(std::make_unique<detail::ThreadRing>(
      static_cast<std::uint32_t>(state.rings.size() + 1), state.capacity));
  return *state.rings.back();
}

/// The attributed obs counter handles, registered on first use. Reading
/// a handle is one relaxed atomic load per counter whether or not the
/// obs registry is enabled (deltas are simply 0 while it is off).
struct AttributedCounters {
  std::array<obs::Counter, kAttributedCounters> handles;

  AttributedCounters() {
    const auto& names = attributed_counter_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      handles[i] = obs::Registry::instance().counter(names[i]);
    }
  }

  static const AttributedCounters& instance() {
    static const AttributedCounters counters;
    return counters;
  }
};

}  // namespace

const std::array<const char*, kAttributedCounters>&
attributed_counter_names() {
  static const std::array<const char*, kAttributedCounters> names = {
      "lina.net.ip_trie.lpm_node_visits",
      "lina.names.name_trie.lpm_node_visits",
      "lina.sim.fabric.next_hop_queries",
      "lina.sim.fabric.detour_hops",
      "lina.sim.resolver.lookups",
      "lina.sim.event_queue.executed",
      "lina.trace.cursor_events",
      "lina.snap.loads",
  };
  return names;
}

namespace detail {

std::uint64_t next_span_id() noexcept {
  return global().next_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  GlobalState& state = global();
  const double ns_per_tick =
      state.ns_per_tick.load(std::memory_order_relaxed);
  if (ns_per_tick > 0.0) {
    const std::uint64_t tsc = tsc_now();
    const std::uint64_t epoch =
        state.epoch_tsc.load(std::memory_order_relaxed);
    if (tsc < epoch) return 0;
    return static_cast<std::uint64_t>(static_cast<double>(tsc - epoch) *
                                      ns_per_tick);
  }
  const std::uint64_t now = steady_ns();
  const std::uint64_t epoch = state.epoch_ns.load(std::memory_order_relaxed);
  return now >= epoch ? now - epoch : 0;
}

/// One span-boundary timestamp: a single TSC read supplies both the raw
/// cycle count and (via the calibrated ratio) the wall-clock ns, so the
/// hot path pays one rdtsc, not two. Falls back to steady_clock when no
/// usable cycle counter was found at calibration.
void timestamp(std::uint64_t& tsc, std::uint64_t& ns) noexcept {
  GlobalState& state = global();
  tsc = tsc_now();
  const double ns_per_tick =
      state.ns_per_tick.load(std::memory_order_relaxed);
  if (ns_per_tick > 0.0) {
    const std::uint64_t epoch =
        state.epoch_tsc.load(std::memory_order_relaxed);
    ns = tsc >= epoch
             ? static_cast<std::uint64_t>(
                   static_cast<double>(tsc - epoch) * ns_per_tick)
             : 0;
    return;
  }
  const std::uint64_t now = steady_ns();
  const std::uint64_t epoch = state.epoch_ns.load(std::memory_order_relaxed);
  ns = now >= epoch ? now - epoch : 0;
}

void sample_counters(
    std::array<std::uint64_t, kAttributedCounters>& out) noexcept {
  const AttributedCounters& counters = AttributedCounters::instance();
  for (std::size_t i = 0; i < kAttributedCounters; ++i) {
    out[i] = counters.handles[i].value();
  }
}

}  // namespace detail

Profiler& Profiler::instance() {
  static Profiler* instance = new Profiler();  // leaked: process-lifetime
  return *instance;
}

void Profiler::enable(bool on) noexcept {
  if (on) {
    // Stamp the epoch on the first enable only, so disable/re-enable
    // cycles within one run keep a common timeline. Calibration happens
    // before the flag below is stored, so no span races a moving clock.
    GlobalState& state = global();
    std::uint64_t expected = 0;
    if (state.epoch_ns.compare_exchange_strong(expected, steady_ns(),
                                               std::memory_order_relaxed)) {
      state.epoch_tsc.store(detail::tsc_now(), std::memory_order_relaxed);
    }
    // Calibrate once per process (reset() may have stamped the epoch
    // already, so this is deliberately independent of the CAS above).
    if (state.ns_per_tick.load(std::memory_order_relaxed) == 0.0) {
      state.ns_per_tick.store(calibrate_ns_per_tick(),
                              std::memory_order_relaxed);
    }
    // Touch the counter handles now so the first span's begin path does
    // not pay the one-time registration.
    (void)AttributedCounters::instance();
  }
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

void Profiler::reset() {
  GlobalState& state = global();
  const std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& ring : state.rings) ring->reallocate(state.capacity);
  state.epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  state.epoch_tsc.store(detail::tsc_now(), std::memory_order_relaxed);
}

void Profiler::set_ring_capacity(std::size_t capacity) {
  GlobalState& state = global();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.capacity = std::max<std::size_t>(1, capacity);
}

std::size_t Profiler::ring_capacity() const {
  GlobalState& state = global();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.capacity;
}

std::vector<SpanRecord> Profiler::drain() const {
  GlobalState& state = global();
  std::vector<SpanRecord> out;
  {
    const std::lock_guard<std::mutex> lock(state.mutex);
    for (const auto& ring : state.rings) {
      const std::size_t n = ring->size();  // acquire: publishes records
      out.insert(out.end(), ring->data(), ring->data() + n);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                              : a.id < b.id;
            });
  return out;
}

std::vector<ThreadProfile> Profiler::thread_profiles() const {
  GlobalState& state = global();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<ThreadProfile> out;
  out.reserve(state.rings.size());
  for (const auto& ring : state.rings) {
    out.push_back(ThreadProfile{ring->thread_index(),
                                static_cast<std::uint64_t>(ring->size()),
                                ring->dropped()});
  }
  return out;
}

std::uint64_t Profiler::dropped() const {
  std::uint64_t total = 0;
  for (const ThreadProfile& t : thread_profiles()) total += t.dropped;
  return total;
}

void Span::begin_impl(const char* name) noexcept {
  detail::ThreadState& state = detail::thread_state();
  if (state.ring == nullptr) state.ring = &register_ring();
  name_ = name;
  id_ = detail::next_span_id();
  parent_ =
      state.current_span != 0 ? state.current_span : state.adopted_parent;
  previous_current_ = state.current_span;
  state.current_span = id_;
  ++state.depth;
  detail::sample_counters(counters_begin_);
  detail::timestamp(tsc_begin_, begin_ns_);
  armed_ = true;
}

void Span::end_impl() noexcept {
  SpanRecord record;
  detail::timestamp(record.tsc_end, record.end_ns);
  detail::ThreadState& state = detail::thread_state();
  record.name = name_;
  record.id = id_;
  record.parent = parent_;
  record.begin_ns = begin_ns_;
  record.tsc_begin = tsc_begin_;
  record.thread = state.ring->thread_index();
  record.depth = state.depth;
  detail::sample_counters(record.counter_deltas);
  for (std::size_t i = 0; i < kAttributedCounters; ++i) {
    record.counter_deltas[i] -= counters_begin_[i];
  }
  state.current_span = previous_current_;
  --state.depth;
  state.ring->push(record);
  armed_ = false;
}

}  // namespace lina::prof
