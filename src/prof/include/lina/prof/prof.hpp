#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lina::prof {

/// `lina::prof` — the causal span profiler (DESIGN.md §4g).
///
/// Always compiled, near-zero overhead while disabled: a `PROF_SPAN`
/// whose enclosing profiler is off costs one relaxed atomic-bool load and
/// a predictable branch — the same off-switch discipline as `lina::obs`,
/// with a *separate* flag so metrics and profiling can be toggled
/// independently (`--json` enables metrics, `--profile` enables both).
///
/// While enabled, each thread records closed spans into its own
/// append-only buffer (single-producer: the owning thread writes, the
/// exporter reads after `enable(false)` with acquire/release hand-off).
/// A span carries:
///
///  - name            — a static string literal, `lina.<layer>.<what>`;
///  - id / parent id  — globally unique, parents may live on another
///                      thread (see the `lina::exec` propagation below);
///  - begin/end       — steady-clock nanoseconds since the profiler
///                      epoch *and* raw TSC ticks (cycle-accurate
///                      durations on x86/aarch64, 0 elsewhere);
///  - thread / depth  — dense thread index and nesting depth;
///  - counter deltas  — the attributed `lina::obs` counters sampled at
///                      both boundaries (see `attributed_counters()`),
///                      so a routing span knows how many LPM node visits
///                      happened inside it.
///
/// Causality across threads: `exec::ThreadPool` captures the submitting
/// thread's innermost open span and workers adopt it as the parent of
/// every span they open for that job, so `parallel_for` chunks attribute
/// to the region that spawned them.
///
/// When a thread's buffer fills, further records are *dropped and
/// counted* (never silently lost, never overwriting a parent another
/// record references); per-thread drop counts ride along in every export.
///
/// The profiler only observes: no span ever feeds back into simulation
/// state, pinned by the prof bit-identity suite (`ctest -L prof`).

namespace detail {

/// The global on/off flag shared by every PROF_SPAN site.
[[nodiscard]] std::atomic<bool>& enabled_flag() noexcept;

inline bool profiling() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

/// Raw timestamp counter: rdtsc on x86, the virtual counter on aarch64,
/// 0 on other targets (wall-clock nanoseconds still work everywhere).
[[nodiscard]] std::uint64_t tsc_now() noexcept;

}  // namespace detail

/// Number of `lina::obs` counters attributed to span boundaries.
inline constexpr std::size_t kAttributedCounters = 8;

/// Names of the attributed counters, index-aligned with
/// `SpanRecord::counter_deltas`. Chosen to decompose a session's cost
/// into the paper's axes: LPM work, fabric forwarding, resolution,
/// event-queue churn, trace replay and snapshot I/O.
[[nodiscard]] const std::array<const char*, kAttributedCounters>&
attributed_counter_names();

/// One closed span. `name` points at the static literal passed to
/// PROF_SPAN / Span::begin and must outlive the export.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root (no enclosing span on any thread)
  std::uint64_t begin_ns = 0;  // steady clock minus profiler epoch
  std::uint64_t end_ns = 0;
  std::uint64_t tsc_begin = 0;
  std::uint64_t tsc_end = 0;
  std::uint32_t thread = 0;  // dense per-process thread index (1-based)
  std::uint32_t depth = 0;   // nesting depth on the recording thread
  std::array<std::uint64_t, kAttributedCounters> counter_deltas{};

  [[nodiscard]] double duration_us() const {
    return static_cast<double>(end_ns - begin_ns) / 1000.0;
  }
};

namespace detail {

/// Per-thread span buffer. The owning thread appends; the exporter reads
/// `size()` with acquire ordering after profiling stops, which
/// happens-after every release store, so drained records are
/// well-defined without locks (single producer, quiesced consumers).
class ThreadRing {
 public:
  explicit ThreadRing(std::uint32_t thread_index, std::size_t capacity)
      : thread_index_(thread_index), records_(capacity) {}

  void push(const SpanRecord& record) noexcept {
    const std::size_t n = size_.load(std::memory_order_relaxed);
    if (n >= records_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    records_[n] = record;
    size_.store(n + 1, std::memory_order_release);
  }

  [[nodiscard]] std::uint32_t thread_index() const { return thread_index_; }
  [[nodiscard]] std::size_t capacity() const { return records_.size(); }
  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const SpanRecord* data() const { return records_.data(); }

  void clear() noexcept {
    size_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }
  void reallocate(std::size_t capacity) {
    records_.assign(capacity, SpanRecord{});
    clear();
  }

 private:
  std::uint32_t thread_index_;
  std::vector<SpanRecord> records_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Thread-local span context: the thread's ring (created on first span),
/// the innermost open span, the nesting depth, and the parent adopted
/// from a spawning thread inside an exec::ThreadPool job.
struct ThreadState {
  ThreadRing* ring = nullptr;
  std::uint64_t current_span = 0;
  std::uint64_t adopted_parent = 0;
  std::uint32_t depth = 0;
};

[[nodiscard]] ThreadState& thread_state() noexcept;

/// Allocates a process-unique span id (never 0, never reused).
[[nodiscard]] std::uint64_t next_span_id() noexcept;

/// Steady-clock nanoseconds since the profiler epoch (set by
/// Profiler::enable / reset).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Samples every attributed counter into `out`.
void sample_counters(
    std::array<std::uint64_t, kAttributedCounters>& out) noexcept;

}  // namespace detail

/// Per-thread accounting, exported alongside the spans so a truncated
/// profile is visible, never silent.
struct ThreadProfile {
  std::uint32_t thread = 0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
};

/// The process-wide profiler: the on/off switch, the ring registry, and
/// the drain the exporters read from.
class Profiler {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1u << 15;  // per thread

  [[nodiscard]] static Profiler& instance();

  /// Turns span recording on/off. Enabling (re)stamps the epoch if no
  /// spans have been recorded yet; disabling publishes all buffered
  /// records to the exporters.
  void enable(bool on) noexcept;
  [[nodiscard]] bool enabled() const noexcept { return detail::profiling(); }

  /// Discards every buffered span and drop count and restamps the epoch.
  /// Call only while no instrumented work is in flight.
  void reset();

  /// Ring capacity for rings created or reset after the call (existing
  /// buffered records survive until the next reset()).
  void set_ring_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t ring_capacity() const;

  /// All buffered spans across threads, ordered by (begin_ns, id). Call
  /// after enable(false) once instrumented work has quiesced.
  [[nodiscard]] std::vector<SpanRecord> drain() const;

  /// Per-thread recorded/dropped accounting.
  [[nodiscard]] std::vector<ThreadProfile> thread_profiles() const;

  /// Sum of dropped records across all thread rings.
  [[nodiscard]] std::uint64_t dropped() const;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  Profiler() = default;
};

/// The innermost open span on this thread (or the parent adopted from the
/// spawning thread inside a pool job); 0 when none or disabled. This is
/// what exec::ThreadPool captures at job submission.
[[nodiscard]] inline std::uint64_t current_span_id() noexcept;

/// RAII span. Use through PROF_SPAN for scoped regions, or default-
/// construct and begin()/end() explicitly for phase-style regions whose
/// lifetime does not match a C++ scope. `name` must be a pointer that
/// outlives the export (string literals; the bench harness interns its
/// dynamic phase names).
class Span {
 public:
  Span() = default;
  explicit Span(const char* name) noexcept {
    if (detail::profiling()) begin_impl(name);
  }
  ~Span() { end(); }

  /// Ends any open region, then starts a new one (no-op while disabled).
  void begin(const char* name) noexcept {
    end();
    if (detail::profiling()) begin_impl(name);
  }

  /// Closes the region and records it; idempotent.
  void end() noexcept {
    if (armed_) end_impl();
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin_impl(const char* name) noexcept;
  void end_impl() noexcept;

  const char* name_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t previous_current_ = 0;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t tsc_begin_ = 0;
  std::array<std::uint64_t, kAttributedCounters> counters_begin_{};
  bool armed_ = false;
};

inline std::uint64_t current_span_id() noexcept {
  if (!detail::profiling()) return 0;
  const detail::ThreadState& state = detail::thread_state();
  return state.current_span != 0 ? state.current_span
                                 : state.adopted_parent;
}

/// Marks spans opened on this thread as children of `parent_span` when no
/// local span encloses them — the cross-thread causal link. ThreadPool
/// workers install one per job; nested scopes restore the previous value.
class AdoptedParentScope {
 public:
  explicit AdoptedParentScope(std::uint64_t parent_span) noexcept
      : previous_(detail::thread_state().adopted_parent) {
    detail::thread_state().adopted_parent = parent_span;
  }
  ~AdoptedParentScope() {
    detail::thread_state().adopted_parent = previous_;
  }
  AdoptedParentScope(const AdoptedParentScope&) = delete;
  AdoptedParentScope& operator=(const AdoptedParentScope&) = delete;

 private:
  std::uint64_t previous_;
};

/// Enables the profiler for the lifetime of the object, restoring the
/// previous state on destruction (tests compare profiled and bare runs
/// in one process).
class EnabledScope {
 public:
  explicit EnabledScope(bool on = true)
      : previous_(Profiler::instance().enabled()) {
    Profiler::instance().enable(on);
  }
  ~EnabledScope() { Profiler::instance().enable(previous_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool previous_;
};

}  // namespace lina::prof

// PROF_SPAN("lina.layer.what"): names a scoped region. One relaxed load
// + branch while profiling is off; ~one buffered record while on.
#define LINA_PROF_CONCAT_INNER(a, b) a##b
#define LINA_PROF_CONCAT(a, b) LINA_PROF_CONCAT_INNER(a, b)
#define PROF_SPAN(name) \
  ::lina::prof::Span LINA_PROF_CONCAT(lina_prof_span_, __LINE__)(name)
