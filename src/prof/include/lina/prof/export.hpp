#pragma once

#include <string>
#include <vector>

#include "lina/prof/prof.hpp"

namespace lina::prof {

/// A drained profile: every buffered span plus the per-thread
/// recorded/dropped accounting. Collect with `collect()` after
/// `Profiler::enable(false)` once instrumented work has quiesced.
struct ProfileReport {
  std::vector<SpanRecord> spans;
  std::vector<ThreadProfile> threads;

  [[nodiscard]] std::uint64_t dropped_total() const {
    std::uint64_t total = 0;
    for (const ThreadProfile& t : threads) total += t.dropped;
    return total;
  }
};

/// Drains the process profiler into a report.
[[nodiscard]] ProfileReport collect();

/// Chrome trace-event JSON (the object form: {"traceEvents": [...]}),
/// loadable in Perfetto / chrome://tracing. Every span becomes one
/// complete ("ph":"X") event with microsecond ts/dur; span id, parent id,
/// nesting depth, TSC cycle count and the non-zero attributed counter
/// deltas ride in "args". Thread-name metadata events and the per-thread
/// drop accounting ("otherData") make truncation visible in the viewer.
[[nodiscard]] std::string export_chrome_trace(const ProfileReport& report);

/// Folded-stack text for flamegraph.pl / speedscope: one
/// "root;child;leaf <self-time-us>" line per distinct stack, aggregated
/// and sorted. Stacks follow parent ids across threads, so worker chunks
/// fold under the region that spawned them. Spans whose parent record
/// was dropped become roots.
[[nodiscard]] std::string export_folded(const ProfileReport& report);

/// Parses `json_text` back and checks it is a structurally valid Chrome
/// trace-event document (traceEvents array; every "X" event carries
/// name/cat/ph/ts/dur/pid/tid with dur >= 0). Returns the number of span
/// events; throws std::runtime_error naming the first violation. This is
/// the parse-back self-check the bench harness and the prof test suite
/// run on every exported trace.
std::size_t validate_chrome_trace(const std::string& json_text);

/// Distinct layer tokens over the report's span names: the second
/// dot-separated component of every "lina.<layer>.<what>" name, sorted.
/// The e2e self-check asserts the instrumented stack covers >= 5 layers.
[[nodiscard]] std::vector<std::string> span_layers(
    const ProfileReport& report);

}  // namespace lina::prof
