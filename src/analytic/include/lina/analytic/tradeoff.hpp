#pragma once

#include <vector>

#include "lina/analytic/mobility_models.hpp"
#include "lina/stats/rng.hpp"
#include "lina/topology/graph.hpp"
#include "lina/topology/shortest_paths.hpp"

namespace lina::analytic {

/// The §5 path-stretch vs update-cost trade-off for one topology under the
/// paper's mobility model (the endpoint's next location is uniform and
/// independent of the current one, self-transitions included).
struct TradeoffResult {
  /// E[dist(H, L)]: expected hop distance from a uniformly chosen home
  /// agent to the endpoint — the additive path stretch of indirection.
  double indirection_stretch = 0.0;
  /// Routers updated per event with a home agent: always exactly one,
  /// expressed as a fraction of all routers.
  double indirection_update_cost = 0.0;
  /// Name-based routing keeps shortest paths: zero additive stretch.
  double name_based_stretch = 0.0;
  /// Expected fraction of routers whose shortest-path forwarding port for
  /// the endpoint changes per mobility event.
  double name_based_update_cost = 0.0;
};

/// Computes the trade-off exactly (closed-form expectation over the uniform
/// stationary distribution) or empirically (Markov-walk Monte Carlo) for an
/// arbitrary connected graph.
///
/// The §5 conventions: endpoints attach at `attachment_points` (all nodes
/// by default), each router's forwarding port toward an endpoint at node v
/// is its deterministic shortest-path first hop (its own "local port" when
/// v is the router itself), and a mobility event resamples the location
/// uniformly.
class TradeoffAnalyzer {
 public:
  explicit TradeoffAnalyzer(const topology::Graph& graph);
  TradeoffAnalyzer(const topology::Graph& graph,
                   std::vector<topology::NodeId> attachment_points);

  /// Exact expectations, O(n * m) after the all-pairs precomputation.
  [[nodiscard]] TradeoffResult exact() const;

  /// Monte-Carlo estimate over `events` mobility events (validates exact()
  /// and the paper's Table 1).
  [[nodiscard]] TradeoffResult simulate(std::size_t events,
                                        stats::Rng& rng) const;

  /// Monte-Carlo estimate under an arbitrary mobility law (DESIGN.md
  /// ablation D). With the uniform-jump model this converges to exact().
  [[nodiscard]] TradeoffResult simulate_with(const MobilityModel& model,
                                             std::size_t events,
                                             stats::Rng& rng) const;

  /// Exact probability that router `k` must update on one mobility event.
  [[nodiscard]] double expected_update_cost_at(topology::NodeId k) const;

  /// Follows forwarding ports from `from` toward an endpoint at `to` and
  /// returns the hop count; verifies name-based routing attains
  /// shortest-path (zero stretch). Throws if forwarding loops.
  [[nodiscard]] std::size_t forwarding_path_length(topology::NodeId from,
                                                   topology::NodeId to) const;

  [[nodiscard]] const topology::AllPairsShortestPaths& paths() const {
    return paths_;
  }

 private:
  // Stored by value so analyzers can be built from temporaries safely.
  topology::Graph graph_;
  std::vector<topology::NodeId> attachment_points_;
  topology::AllPairsShortestPaths paths_;
};

}  // namespace lina::analytic
