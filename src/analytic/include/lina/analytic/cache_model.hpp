#pragma once

#include <cstddef>
#include <vector>

namespace lina::analytic {

/// Coras et al.'s analytic model for loc/ID mapping caches ("An
/// Analytical Model for Loc/ID Mappings Caches", PAPERS.md), in the
/// characteristic-time (Che) formulation their working-set derivation
/// reduces to for an LRU cache under a stationary reference stream.
///
/// Request model: an aggregate Poisson stream of `request_rate_per_ms`
/// lookups over a catalog of `catalog` mappings with Zipf(s) popularity
/// (rank-k probability q_k = k^-s / H_{n,s}), the independent reference
/// model the paper fits to LISP traffic. For an LRU cache of capacity C
/// there is a single characteristic time T_C — the age at which an
/// unreferenced entry falls off the list — implicitly defined by the
/// occupancy constraint
///
///     sum_k (1 - e^{-lambda_k T_eff,k}) = C,   lambda_k = q_k * rate,
///
/// and a mapping hits iff its inter-request gap is shorter than its
/// effective lifetime. Our TTL+LRU policy bounds the idle lifetime by
/// the sliding TTL, so T_eff,k = min(T_C, ttl_ms); with per-mapping
/// churn invalidations at rate `churn_rate_per_ms` (mobility updates
/// dropping the entry), a request additionally hits only when no churn
/// event landed since the previous request:
///
///     h_k = lambda_k/(lambda_k+mu) * (1 - e^{-(lambda_k+mu) T_eff}).
///
/// The aggregate prediction is H = sum_k q_k h_k. When the occupancy
/// constraint cannot bind (the TTL or churn keeps steady-state occupancy
/// under C), T_C is infinite and the TTL alone governs.
struct CacheModelInput {
  std::size_t catalog = 0;          // number of distinct mappings (n)
  double zipf_exponent = 1.0;       // s
  std::size_t capacity = 0;         // C, entries
  double ttl_ms = 0.0;              // sliding idle TTL (<=0 = unbounded)
  double request_rate_per_ms = 1.0; // aggregate Poisson lookup rate
  double churn_rate_per_ms = 0.0;   // per-mapping invalidation rate (mu)
};

struct CacheModelResult {
  double hit_rate = 0.0;            // H, the headline prediction
  double characteristic_time_ms = 0.0;  // T_C (inf when TTL-bound)
  double expected_occupancy = 0.0;  // steady-state cached entries
};

/// Evaluates the model. Throws std::invalid_argument on a non-positive
/// catalog/rate or a negative churn rate. A capacity of at least the
/// catalog size (or 0 TTL pressure) degenerates gracefully: T_C becomes
/// unbounded and the TTL/churn terms alone bound the hit rate.
[[nodiscard]] CacheModelResult lru_cache_model(const CacheModelInput& input);

/// Zipf rank probabilities q_1..q_n (1-based rank k at index k-1); the
/// popularity law both the model above and the cache_sweep driver share.
[[nodiscard]] std::vector<double> zipf_popularity(std::size_t catalog,
                                                  double exponent);

}  // namespace lina::analytic
