#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "lina/stats/rng.hpp"
#include "lina/topology/graph.hpp"

namespace lina::analytic {

/// An abstract network-mobility process over a set of attachment points —
/// the §8 discussion's "random-waypoint equivalent for network mobility".
/// The paper's §5 analysis uses the uniform-jump special case; these models
/// let the trade-off analysis probe how sensitive its conclusions are to
/// the mobility law (DESIGN.md ablation D).
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  MobilityModel(const MobilityModel&) = delete;
  MobilityModel& operator=(const MobilityModel&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// The endpoint's first attachment.
  [[nodiscard]] virtual topology::NodeId initial(
      std::span<const topology::NodeId> attachments,
      stats::Rng& rng) const = 0;

  /// The attachment after one mobility event at `current`.
  [[nodiscard]] virtual topology::NodeId next(
      topology::NodeId current,
      std::span<const topology::NodeId> attachments,
      stats::Rng& rng) const = 0;

 protected:
  MobilityModel() = default;
};

/// The paper's §5 process: the next location is uniform over all
/// attachment points, independent of the current one (self-transitions
/// included).
[[nodiscard]] std::unique_ptr<MobilityModel> make_uniform_jump_model();

/// A sticky Markov process: with probability `stay` the endpoint
/// reattaches where it is (a connectivity event without movement);
/// otherwise it jumps uniformly. stay in [0, 1).
[[nodiscard]] std::unique_ptr<MobilityModel> make_sticky_model(double stay);

/// Preferential return: attachment points are ranked once (by index) and
/// visited with Zipf(s) probabilities independent of the current location —
/// a home-biased population where a few locations absorb most of the time,
/// as the NomadLog data shows.
[[nodiscard]] std::unique_ptr<MobilityModel> make_preferential_model(
    double zipf_exponent);

/// Nearest-neighbor walk: each event moves the endpoint to a uniformly
/// chosen *adjacent* attachment point on the graph (physical roaming, in
/// contrast to the paper's teleporting jumps). Attachment points must be
/// graph nodes.
[[nodiscard]] std::unique_ptr<MobilityModel> make_neighbor_walk_model(
    const topology::Graph& graph);

}  // namespace lina::analytic
