#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lina::analytic {

/// One row of the paper's Table 1: expected path stretch (additive hops
/// over shortest path) and aggregate update cost (expected fraction of
/// routers updated per mobility event) under uniform random mobility.
struct Table1Row {
  std::string topology;
  double indirection_stretch = 0.0;
  double indirection_update_cost = 0.0;
  double name_based_stretch = 0.0;
  double name_based_update_cost = 0.0;
};

/// The paper's published closed forms evaluated at a concrete n:
///   chain:       (n/3, 1/n, 0, 1/3)
///   clique:      (1, 1/n, 0, 1)
///   binary tree: (2 log2 n, 1/n, 0, 2 log2 n / (n-1))
///   star:        (2, 1/n, 0, 1/(n+1))
/// Exact (non-asymptotic) chain values use the paper's §5.1 derivation:
/// stretch (n^2-1)/(3n) and update cost (n^3+3n^2-n)/(3n^3).
[[nodiscard]] std::vector<Table1Row> paper_table1(std::size_t n);

/// Exact §5.1 chain formulas (match `TradeoffAnalyzer::exact` on a chain).
[[nodiscard]] double chain_indirection_stretch(std::size_t n);
[[nodiscard]] double chain_name_based_update_cost(std::size_t n);

}  // namespace lina::analytic
