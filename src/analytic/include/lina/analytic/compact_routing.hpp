#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "lina/stats/rng.hpp"
#include "lina/topology/graph.hpp"
#include "lina/topology/shortest_paths.hpp"

namespace lina::analytic {

/// A Thorup–Zwick-style stretch-3 compact routing scheme — the §2.1
/// reference point the paper cites against name-based routing: "with N
/// flat identifiers, to be within 3x stretch of shortest-path, each router
/// needs Ω(N) forwarding entries; for up to 5x stretch, it is Ω(√N)".
///
/// Construction: a random landmark set L; every node u keeps routes to all
/// landmarks plus direct entries for every destination w closer to u than
/// w is to its own nearest landmark (d(u,w) < d(w, l(w))). Packets for v
/// head toward v's landmark and switch to the direct entry as soon as an
/// en-route node holds one; once at the landmark the final descent is
/// direct. Worst-case multiplicative stretch is 3; tables are
/// O(sqrt(n log n)) in expectation.
///
/// For the paper's mobility lens, the interesting third column is update
/// cost: when an endpoint moves, only the nodes holding a direct entry for
/// its old or new attachment (two landmark-radius balls) plus one
/// directory record must change — o(n), unlike pure name-based routing's
/// Θ(n) worst case, at the price of bounded stretch.
struct CompactRoutingConfig {
  /// 0 = automatic: ceil(sqrt(n * max(ln n, 1))).
  std::size_t landmark_count = 0;
  std::uint64_t seed = 1;
};

class CompactRoutingScheme {
 public:
  explicit CompactRoutingScheme(const topology::Graph& graph,
                                CompactRoutingConfig config = {});

  [[nodiscard]] std::span<const topology::NodeId> landmarks() const {
    return landmarks_;
  }
  [[nodiscard]] bool is_landmark(topology::NodeId node) const;
  [[nodiscard]] topology::NodeId nearest_landmark(
      topology::NodeId node) const;

  /// Destinations `node` holds a direct entry for (excluding landmarks).
  [[nodiscard]] std::span<const topology::NodeId> direct_entries(
      topology::NodeId node) const;

  /// Entries at `node`: landmarks + direct entries.
  [[nodiscard]] std::size_t table_size(topology::NodeId node) const;
  [[nodiscard]] double average_table_size() const;
  [[nodiscard]] std::size_t max_table_size() const;

  /// Hop count of the compact route from u to v (0 when u == v).
  [[nodiscard]] std::size_t route_length(topology::NodeId u,
                                         topology::NodeId v) const;

  /// route_length / shortest-path length; 1.0 when u == v.
  [[nodiscard]] double stretch(topology::NodeId u, topology::NodeId v) const;

  /// Fraction of nodes that must update state when an endpoint moves from
  /// `from` to `to`: holders of direct entries for either attachment, both
  /// nearest landmarks, plus one directory record.
  [[nodiscard]] double update_fraction(topology::NodeId from,
                                       topology::NodeId to) const;

  struct Summary {
    double avg_table_size = 0.0;
    std::size_t max_table_size = 0;
    double avg_stretch = 0.0;
    double max_stretch = 0.0;
    double avg_update_fraction = 0.0;
  };

  /// Monte-Carlo evaluation over `sample_pairs` random (u, v) pairs.
  [[nodiscard]] Summary evaluate(std::size_t sample_pairs,
                                 stats::Rng& rng) const;

 private:
  const topology::Graph* graph_;
  topology::AllPairsShortestPaths paths_;
  std::vector<topology::NodeId> landmarks_;
  std::vector<bool> landmark_flag_;
  std::vector<topology::NodeId> nearest_landmark_;
  std::vector<double> landmark_distance_;
  // direct_entries_[u]: sorted destinations u may route to directly.
  std::vector<std::vector<topology::NodeId>> direct_entries_;
  // holders_[w]: nodes holding a direct entry for w.
  std::vector<std::vector<topology::NodeId>> holders_;
};

}  // namespace lina::analytic
