#include "lina/analytic/compact_routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lina::analytic {

using topology::Graph;
using topology::NodeId;

CompactRoutingScheme::CompactRoutingScheme(const Graph& graph,
                                           CompactRoutingConfig config)
    : graph_(&graph), paths_(graph) {
  const std::size_t n = graph.node_count();
  if (n == 0)
    throw std::invalid_argument("CompactRoutingScheme: empty graph");
  if (!graph.connected())
    throw std::invalid_argument("CompactRoutingScheme: graph not connected");

  std::size_t k = config.landmark_count;
  if (k == 0) {
    k = static_cast<std::size_t>(std::ceil(
        std::sqrt(static_cast<double>(n) *
                  std::max(std::log(static_cast<double>(n)), 1.0))));
  }
  k = std::min(k, n);

  // Sample k distinct landmarks (partial Fisher-Yates).
  stats::Rng rng(config.seed, "compact-routing");
  std::vector<NodeId> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(pool[i], pool[i + rng.index(n - i)]);
  }
  landmarks_.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(landmarks_.begin(), landmarks_.end());
  landmark_flag_.assign(n, false);
  for (const NodeId l : landmarks_) landmark_flag_[l] = true;

  // Nearest landmark per node.
  nearest_landmark_.assign(n, topology::kNoNode);
  landmark_distance_.assign(n, std::numeric_limits<double>::infinity());
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId l : landmarks_) {
      const double d = paths_.distance(v, l);
      if (d < landmark_distance_[v]) {
        landmark_distance_[v] = d;
        nearest_landmark_[v] = l;
      }
    }
  }

  // Direct entries: u holds w (w not a landmark, w != u) iff
  // d(u, w) < d(w, l(w)).
  direct_entries_.assign(n, {});
  holders_.assign(n, {});
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId w = 0; w < n; ++w) {
      if (w == u || landmark_flag_[w]) continue;
      if (paths_.distance(u, w) < landmark_distance_[w]) {
        direct_entries_[u].push_back(w);
        holders_[w].push_back(u);
      }
    }
  }
}

bool CompactRoutingScheme::is_landmark(NodeId node) const {
  if (node >= landmark_flag_.size())
    throw std::out_of_range("CompactRoutingScheme::is_landmark");
  return landmark_flag_[node];
}

NodeId CompactRoutingScheme::nearest_landmark(NodeId node) const {
  if (node >= nearest_landmark_.size())
    throw std::out_of_range("CompactRoutingScheme::nearest_landmark");
  return nearest_landmark_[node];
}

std::span<const NodeId> CompactRoutingScheme::direct_entries(
    NodeId node) const {
  if (node >= direct_entries_.size())
    throw std::out_of_range("CompactRoutingScheme::direct_entries");
  return direct_entries_[node];
}

std::size_t CompactRoutingScheme::table_size(NodeId node) const {
  return landmarks_.size() + direct_entries(node).size();
}

double CompactRoutingScheme::average_table_size() const {
  double total = 0.0;
  for (NodeId u = 0; u < direct_entries_.size(); ++u) {
    total += static_cast<double>(table_size(u));
  }
  return total / static_cast<double>(direct_entries_.size());
}

std::size_t CompactRoutingScheme::max_table_size() const {
  std::size_t best = 0;
  for (NodeId u = 0; u < direct_entries_.size(); ++u) {
    best = std::max(best, table_size(u));
  }
  return best;
}

std::size_t CompactRoutingScheme::route_length(NodeId u, NodeId v) const {
  if (u >= direct_entries_.size() || v >= direct_entries_.size())
    throw std::out_of_range("CompactRoutingScheme::route_length");
  const NodeId landmark = nearest_landmark_[v];
  NodeId current = u;
  std::size_t hops = 0;
  bool descending = false;  // switched to the direct/landmark descent
  while (current != v) {
    // Direct entry available (or v is a landmark, or we reached v's
    // landmark): descend along the shortest-path tree toward v.
    if (!descending) {
      const bool knows_direct =
          landmark_flag_[v] ||
          std::binary_search(direct_entries_[current].begin(),
                             direct_entries_[current].end(), v);
      if (knows_direct || current == landmark) descending = true;
    }
    const NodeId toward = descending ? v : landmark;
    current = paths_.next_hop(current, toward);
    if (++hops > 3 * graph_->node_count())
      throw std::logic_error("CompactRoutingScheme: routing loop");
  }
  return hops;
}

double CompactRoutingScheme::stretch(NodeId u, NodeId v) const {
  if (u == v) return 1.0;
  return static_cast<double>(route_length(u, v)) / paths_.distance(u, v);
}

double CompactRoutingScheme::update_fraction(NodeId from, NodeId to) const {
  if (from >= holders_.size() || to >= holders_.size())
    throw std::out_of_range("CompactRoutingScheme::update_fraction");
  // Holders of either attachment's entry, the two landmarks' directory
  // records, deduplicated.
  std::vector<NodeId> touched;
  touched.insert(touched.end(), holders_[from].begin(), holders_[from].end());
  touched.insert(touched.end(), holders_[to].begin(), holders_[to].end());
  touched.push_back(nearest_landmark_[from]);
  touched.push_back(nearest_landmark_[to]);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return static_cast<double>(touched.size()) /
         static_cast<double>(holders_.size());
}

CompactRoutingScheme::Summary CompactRoutingScheme::evaluate(
    std::size_t sample_pairs, stats::Rng& rng) const {
  if (sample_pairs == 0)
    throw std::invalid_argument("CompactRoutingScheme::evaluate: no samples");
  Summary summary;
  summary.avg_table_size = average_table_size();
  summary.max_table_size = max_table_size();

  const std::size_t n = direct_entries_.size();
  double stretch_sum = 0.0, update_sum = 0.0;
  for (std::size_t i = 0; i < sample_pairs; ++i) {
    const auto u = static_cast<NodeId>(rng.index(n));
    auto v = static_cast<NodeId>(rng.index(n));
    if (u == v) v = static_cast<NodeId>((v + 1) % n);
    const double s = stretch(u, v);
    stretch_sum += s;
    summary.max_stretch = std::max(summary.max_stretch, s);
    update_sum += update_fraction(u, v);
  }
  summary.avg_stretch = stretch_sum / static_cast<double>(sample_pairs);
  summary.avg_update_fraction =
      update_sum / static_cast<double>(sample_pairs);
  return summary;
}

}  // namespace lina::analytic
