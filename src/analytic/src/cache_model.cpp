#include "lina/analytic/cache_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace lina::analytic {

std::vector<double> zipf_popularity(std::size_t catalog, double exponent) {
  if (catalog == 0)
    throw std::invalid_argument("zipf_popularity: empty catalog");
  std::vector<double> q(catalog);
  double norm = 0.0;
  for (std::size_t k = 0; k < catalog; ++k) {
    q[k] = std::pow(static_cast<double>(k + 1), -exponent);
    norm += q[k];
  }
  for (double& value : q) value /= norm;
  return q;
}

namespace {

/// Per-mapping hit probability given its effective idle lifetime.
double item_hit(double lambda, double mu, double lifetime_ms) {
  if (lifetime_ms <= 0.0) return 0.0;
  if (std::isinf(lifetime_ms)) {
    return mu == 0.0 ? 1.0 : lambda / (lambda + mu);
  }
  return lambda / (lambda + mu) *
         (1.0 - std::exp(-(lambda + mu) * lifetime_ms));
}

/// Steady-state probability the mapping is cached when its idle lifetime
/// is `lifetime_ms`: by PASTA this is the hit probability — an entry is
/// occupied exactly when a hypothetical request would hit it.
double item_occupancy(double lambda, double mu, double lifetime_ms) {
  return item_hit(lambda, mu, lifetime_ms);
}

}  // namespace

CacheModelResult lru_cache_model(const CacheModelInput& input) {
  if (input.catalog == 0)
    throw std::invalid_argument("lru_cache_model: empty catalog");
  if (input.request_rate_per_ms <= 0.0)
    throw std::invalid_argument("lru_cache_model: non-positive rate");
  if (input.churn_rate_per_ms < 0.0)
    throw std::invalid_argument("lru_cache_model: negative churn rate");
  const double inf = std::numeric_limits<double>::infinity();
  const double ttl = input.ttl_ms > 0.0 ? input.ttl_ms : inf;
  const std::vector<double> q =
      zipf_popularity(input.catalog, input.zipf_exponent);
  const double mu = input.churn_rate_per_ms;

  const auto occupancy_at = [&](double t_c) {
    double total = 0.0;
    for (const double qk : q) {
      total += item_occupancy(qk * input.request_rate_per_ms, mu,
                              std::min(t_c, ttl));
    }
    return total;
  };

  CacheModelResult result;
  double t_c = inf;
  const double cap = static_cast<double>(input.capacity);
  if (input.capacity == 0) {
    result.hit_rate = 0.0;
    result.characteristic_time_ms = 0.0;
    result.expected_occupancy = 0.0;
    return result;
  }
  // The occupancy constraint binds only when unbounded-lifetime occupancy
  // would overflow the capacity; otherwise the TTL/churn govern alone.
  if (occupancy_at(inf) > cap) {
    // Bisection for T_C: occupancy is monotone increasing in t_c.
    double lo = 0.0;
    double hi = 1.0;
    while (occupancy_at(hi) < cap) hi *= 2.0;
    for (int iter = 0; iter < 200 && (hi - lo) > 1e-12 * hi; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (occupancy_at(mid) < cap) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    t_c = 0.5 * (lo + hi);
  }

  double hit = 0.0;
  for (const double qk : q) {
    hit += qk * item_hit(qk * input.request_rate_per_ms, mu,
                         std::min(t_c, ttl));
  }
  result.hit_rate = hit;
  result.characteristic_time_ms = t_c;
  result.expected_occupancy = occupancy_at(t_c);
  return result;
}

}  // namespace lina::analytic
