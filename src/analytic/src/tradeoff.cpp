#include "lina/analytic/tradeoff.hpp"

#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace lina::analytic {

using topology::Graph;
using topology::NodeId;

TradeoffAnalyzer::TradeoffAnalyzer(const Graph& graph)
    : TradeoffAnalyzer(graph, [&graph] {
        std::vector<NodeId> all(graph.node_count());
        std::iota(all.begin(), all.end(), 0);
        return all;
      }()) {}

TradeoffAnalyzer::TradeoffAnalyzer(const Graph& graph,
                                   std::vector<NodeId> attachment_points)
    : graph_(graph),
      attachment_points_(std::move(attachment_points)),
      paths_(graph_) {
  if (attachment_points_.empty())
    throw std::invalid_argument("TradeoffAnalyzer: no attachment points");
  if (!graph.connected())
    throw std::invalid_argument("TradeoffAnalyzer: graph not connected");
  for (const NodeId a : attachment_points_) {
    if (a >= graph.node_count())
      throw std::out_of_range("TradeoffAnalyzer: attachment out of range");
  }
}

double TradeoffAnalyzer::expected_update_cost_at(NodeId k) const {
  if (k >= graph_.node_count())
    throw std::out_of_range("TradeoffAnalyzer::expected_update_cost_at");
  // Router k updates iff the endpoint's old and new locations map to
  // different ports. With locations iid uniform over the attachment set,
  // P(update) = 1 - sum_port P(location maps to port)^2.
  std::unordered_map<NodeId, std::size_t> port_counts;
  for (const NodeId a : attachment_points_) {
    ++port_counts[paths_.next_hop(k, a)];
  }
  const double m = static_cast<double>(attachment_points_.size());
  double same = 0.0;
  for (const auto& [_, count] : port_counts) {
    const double p = static_cast<double>(count) / m;
    same += p * p;
  }
  return 1.0 - same;
}

TradeoffResult TradeoffAnalyzer::exact() const {
  TradeoffResult result;
  const std::size_t n = graph_.node_count();
  const std::size_t m = attachment_points_.size();

  double stretch_sum = 0.0;
  for (const NodeId h : attachment_points_) {
    for (const NodeId l : attachment_points_) {
      stretch_sum += paths_.distance(h, l);
    }
  }
  result.indirection_stretch =
      stretch_sum / (static_cast<double>(m) * static_cast<double>(m));
  result.indirection_update_cost = 1.0 / static_cast<double>(n);
  result.name_based_stretch = 0.0;

  double update_sum = 0.0;
  for (NodeId k = 0; k < n; ++k) update_sum += expected_update_cost_at(k);
  result.name_based_update_cost = update_sum / static_cast<double>(n);
  return result;
}

TradeoffResult TradeoffAnalyzer::simulate(std::size_t events,
                                          stats::Rng& rng) const {
  return simulate_with(*make_uniform_jump_model(), events, rng);
}

TradeoffResult TradeoffAnalyzer::simulate_with(const MobilityModel& model,
                                               std::size_t events,
                                               stats::Rng& rng) const {
  if (events == 0)
    throw std::invalid_argument("TradeoffAnalyzer::simulate: zero events");
  const std::size_t n = graph_.node_count();

  const NodeId home = model.initial(attachment_points_, rng);
  NodeId location = model.initial(attachment_points_, rng);

  double stretch_sum = paths_.distance(home, location);
  double updated_routers = 0.0;
  for (std::size_t e = 0; e < events; ++e) {
    const NodeId next = model.next(location, attachment_points_, rng);
    for (NodeId k = 0; k < n; ++k) {
      if (paths_.next_hop(k, location) != paths_.next_hop(k, next)) {
        updated_routers += 1.0;
      }
    }
    location = next;
    stretch_sum += paths_.distance(home, location);
  }

  TradeoffResult result;
  result.indirection_stretch =
      stretch_sum / static_cast<double>(events + 1);
  result.indirection_update_cost = 1.0 / static_cast<double>(n);
  result.name_based_stretch = 0.0;
  result.name_based_update_cost =
      updated_routers /
      (static_cast<double>(events) * static_cast<double>(n));
  return result;
}

std::size_t TradeoffAnalyzer::forwarding_path_length(NodeId from,
                                                     NodeId to) const {
  std::size_t hops = 0;
  NodeId current = from;
  while (current != to) {
    const NodeId next = paths_.next_hop(current, to);
    if (next == topology::kNoNode)
      throw std::logic_error("forwarding_path_length: unreachable");
    current = next;
    if (++hops > graph_.node_count())
      throw std::logic_error("forwarding_path_length: forwarding loop");
  }
  return hops;
}

}  // namespace lina::analytic
