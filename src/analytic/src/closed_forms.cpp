#include "lina/analytic/closed_forms.hpp"

#include <cmath>
#include <stdexcept>

namespace lina::analytic {

double chain_indirection_stretch(std::size_t n) {
  if (n == 0) throw std::invalid_argument("chain_indirection_stretch: n == 0");
  const double nd = static_cast<double>(n);
  return (nd * nd - 1.0) / (3.0 * nd);
}

double chain_name_based_update_cost(std::size_t n) {
  if (n == 0)
    throw std::invalid_argument("chain_name_based_update_cost: n == 0");
  // Summing the paper's own per-router expression
  //   E[update_k] = [(k-1)(n-k+1) + (n-1) + (n-k)k] / n^2
  // over k = 1..n and dividing by n gives (n^2 + 3n - 4) / 3n^2. The
  // paper prints (n^3 + 3n^2 - n) / 3n^3 = (n^2 + 3n - 1) / 3n^2, which
  // differs by exactly 1/n^2 (an algebra slip in the TR); both are 1/3
  // asymptotically. We use the per-router-consistent form so that
  // TradeoffAnalyzer::exact() matches it to machine precision.
  const double nd = static_cast<double>(n);
  return (nd * nd + 3.0 * nd - 4.0) / (3.0 * nd * nd);
}

std::vector<Table1Row> paper_table1(std::size_t n) {
  if (n < 2) throw std::invalid_argument("paper_table1: n < 2");
  const double nd = static_cast<double>(n);
  const double log2n = std::log2(nd);
  return {
      {"chain", chain_indirection_stretch(n), 1.0 / nd, 0.0,
       chain_name_based_update_cost(n)},
      {"clique", 1.0, 1.0 / nd, 0.0, 1.0},
      {"binary tree", 2.0 * log2n, 1.0 / nd, 0.0, 2.0 * log2n / (nd - 1.0)},
      {"star", 2.0, 1.0 / nd, 0.0, 1.0 / (nd + 1.0)},
  };
}

}  // namespace lina::analytic
