#include "lina/analytic/mobility_models.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "lina/stats/distributions.hpp"

namespace lina::analytic {

using topology::NodeId;

namespace {

NodeId uniform_pick(std::span<const NodeId> attachments, stats::Rng& rng) {
  if (attachments.empty())
    throw std::invalid_argument("MobilityModel: no attachment points");
  return attachments[rng.index(attachments.size())];
}

class UniformJumpModel final : public MobilityModel {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "uniform-jump";
  }
  [[nodiscard]] NodeId initial(std::span<const NodeId> attachments,
                               stats::Rng& rng) const override {
    return uniform_pick(attachments, rng);
  }
  [[nodiscard]] NodeId next(NodeId, std::span<const NodeId> attachments,
                            stats::Rng& rng) const override {
    return uniform_pick(attachments, rng);
  }
};

class StickyModel final : public MobilityModel {
 public:
  explicit StickyModel(double stay) : stay_(stay) {
    if (stay < 0.0 || stay >= 1.0)
      throw std::invalid_argument("StickyModel: stay must be in [0, 1)");
  }
  [[nodiscard]] std::string_view name() const override { return "sticky"; }
  [[nodiscard]] NodeId initial(std::span<const NodeId> attachments,
                               stats::Rng& rng) const override {
    return uniform_pick(attachments, rng);
  }
  [[nodiscard]] NodeId next(NodeId current,
                            std::span<const NodeId> attachments,
                            stats::Rng& rng) const override {
    if (rng.chance(stay_)) return current;
    return uniform_pick(attachments, rng);
  }

 private:
  double stay_;
};

class PreferentialModel final : public MobilityModel {
 public:
  explicit PreferentialModel(double exponent) : exponent_(exponent) {
    if (exponent < 0.0)
      throw std::invalid_argument("PreferentialModel: negative exponent");
  }
  [[nodiscard]] std::string_view name() const override {
    return "preferential-return";
  }
  [[nodiscard]] NodeId initial(std::span<const NodeId> attachments,
                               stats::Rng& rng) const override {
    return pick(attachments, rng);
  }
  [[nodiscard]] NodeId next(NodeId, std::span<const NodeId> attachments,
                            stats::Rng& rng) const override {
    return pick(attachments, rng);
  }

 private:
  NodeId pick(std::span<const NodeId> attachments, stats::Rng& rng) const {
    if (attachments.empty())
      throw std::invalid_argument("MobilityModel: no attachment points");
    const stats::Zipf zipf(attachments.size(), exponent_);
    return attachments[zipf.sample(rng) - 1];
  }

  double exponent_;
};

class NeighborWalkModel final : public MobilityModel {
 public:
  explicit NeighborWalkModel(const topology::Graph& graph) : graph_(&graph) {}

  [[nodiscard]] std::string_view name() const override {
    return "neighbor-walk";
  }
  [[nodiscard]] NodeId initial(std::span<const NodeId> attachments,
                               stats::Rng& rng) const override {
    return uniform_pick(attachments, rng);
  }
  [[nodiscard]] NodeId next(NodeId current,
                            std::span<const NodeId> attachments,
                            stats::Rng& rng) const override {
    if (current >= graph_->node_count())
      throw std::out_of_range("NeighborWalkModel: current not a graph node");
    // Neighbors that are attachment points; stay put if none.
    std::vector<NodeId> candidates;
    for (const topology::Graph::Edge& edge : graph_->neighbors(current)) {
      if (std::find(attachments.begin(), attachments.end(), edge.to) !=
          attachments.end()) {
        candidates.push_back(edge.to);
      }
    }
    if (candidates.empty()) return current;
    return candidates[rng.index(candidates.size())];
  }

 private:
  const topology::Graph* graph_;
};

}  // namespace

std::unique_ptr<MobilityModel> make_uniform_jump_model() {
  return std::make_unique<UniformJumpModel>();
}

std::unique_ptr<MobilityModel> make_sticky_model(double stay) {
  return std::make_unique<StickyModel>(stay);
}

std::unique_ptr<MobilityModel> make_preferential_model(double zipf_exponent) {
  return std::make_unique<PreferentialModel>(zipf_exponent);
}

std::unique_ptr<MobilityModel> make_neighbor_walk_model(
    const topology::Graph& graph) {
  return std::make_unique<NeighborWalkModel>(graph);
}

}  // namespace lina::analytic
