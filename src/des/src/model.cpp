#include "lina/des/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lina::des {

namespace {

[[nodiscard]] bool finite(double v) { return std::isfinite(v); }

}  // namespace

PacketModel::PacketModel(const sim::ForwardingFabric& fabric,
                         sim::SimArchitecture architecture,
                         const sim::FailurePlan* failures,
                         std::size_t packet_ttl_hops)
    : fabric_(&fabric),
      arch_(architecture),
      failures_(failures != nullptr && !failures->empty() ? failures
                                                          : nullptr),
      packet_ttl_hops_(static_cast<std::uint16_t>(
          std::min<std::size_t>(packet_ttl_hops, 0xffff))) {}

std::uint32_t PacketModel::add_session(const SessionParams& params) {
  const std::size_t as_count = fabric_->internet().graph().as_count();
  const auto check_as = [&](topology::AsId as, const char* what) {
    if (as >= as_count)
      throw std::invalid_argument(std::string("PacketModel: bad ") + what);
  };
  if (params.schedule.empty())
    throw std::invalid_argument("PacketModel: empty schedule");
  if (params.schedule.front().time_ms != 0.0)
    throw std::invalid_argument(
        "PacketModel: schedule must start at time 0");
  for (std::size_t i = 0; i < params.schedule.size(); ++i) {
    const sim::MobilityStep& step = params.schedule[i];
    if (!finite(step.time_ms) || step.time_ms < 0.0)
      throw std::invalid_argument("PacketModel: non-finite step time");
    if (i > 0 && step.time_ms < params.schedule[i - 1].time_ms)
      throw std::invalid_argument("PacketModel: unsorted schedule");
    check_as(step.as, "schedule AS");
  }
  if (!finite(params.start_ms) || params.start_ms < 0.0)
    throw std::invalid_argument("PacketModel: bad start_ms");
  if (!finite(params.duration_ms) || params.duration_ms <= 0.0)
    throw std::invalid_argument("PacketModel: bad duration_ms");
  if (!finite(params.interval_ms) || params.interval_ms <= 0.0)
    throw std::invalid_argument("PacketModel: bad interval_ms");
  check_as(params.correspondent, "correspondent");

  Spec spec;
  spec.digest_id = params.digest_id.value_or(specs_.size());
  spec.correspondent = params.correspondent;
  spec.home_as = params.home_as.value_or(params.schedule.front().as);
  check_as(spec.home_as, "home AS");
  spec.first_step = static_cast<std::uint32_t>(steps_.size());
  spec.step_count = static_cast<std::uint32_t>(params.schedule.size());
  spec.start_ms = params.start_ms;
  spec.duration_ms = params.duration_ms;
  spec.interval_ms = params.interval_ms;
  spec.ttl_ms = params.resolver_ttl_ms;
  spec.update_hop_ms = params.update_hop_ms;
  spec.scope_hops = static_cast<std::uint32_t>(
      std::min<std::size_t>(params.update_scope_hops, 0xffffffffULL));
  steps_.insert(steps_.end(), params.schedule.begin(),
                params.schedule.end());

  spec.first_replica = static_cast<std::uint32_t>(replicas_.size());
  if (arch_ == sim::SimArchitecture::kNameResolution ||
      arch_ == sim::SimArchitecture::kReplicatedResolution) {
    if (!finite(params.resolver_ttl_ms) || params.resolver_ttl_ms <= 0.0)
      throw std::invalid_argument("PacketModel: bad resolver TTL");
    std::vector<topology::AsId> pool;
    if (arch_ == sim::SimArchitecture::kReplicatedResolution) {
      if (params.resolver_replicas.empty())
        throw std::invalid_argument(
            "PacketModel: replicated resolution needs replicas");
      pool = params.resolver_replicas;
    } else {
      if (!params.resolver_as.has_value())
        throw std::invalid_argument(
            "PacketModel: name resolution needs a resolver");
      pool = {*params.resolver_as};
    }
    for (const topology::AsId replica : pool) check_as(replica, "replica");
    // Nearest-first (ties by AS id): the correspondent resolves at the
    // first live replica in this order. Precomputed here so the per-event
    // choice is one ordered scan.
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    std::stable_sort(pool.begin(), pool.end(),
                     [&](topology::AsId a, topology::AsId b) {
                       const auto da =
                           fabric_->path_delay_ms(spec.correspondent, a);
                       const auto db =
                           fabric_->path_delay_ms(spec.correspondent, b);
                       const double va = da.value_or(
                           std::numeric_limits<double>::infinity());
                       const double vb = db.value_or(
                           std::numeric_limits<double>::infinity());
                       if (va != vb) return va < vb;
                       return a < b;
                     });
    replicas_.insert(replicas_.end(), pool.begin(), pool.end());
  } else if (arch_ == sim::SimArchitecture::kNameBased) {
    if (!finite(params.update_hop_ms) || params.update_hop_ms <= 0.0)
      throw std::invalid_argument("PacketModel: bad update_hop_ms");
  }
  spec.replica_count =
      static_cast<std::uint32_t>(replicas_.size() - spec.first_replica);

  specs_.push_back(spec);
  return static_cast<std::uint32_t>(specs_.size() - 1);
}

EventRecord PacketModel::initial_event(std::uint32_t session) const {
  const Spec& s = specs_[session];
  EventRecord record;
  record.type = EventType::kEmit;
  record.time_ms = s.start_ms;
  record.session = session;
  record.packet = 0;
  record.at = s.correspondent;
  return record;
}

topology::AsId PacketModel::location_at(const Spec& s, double t) const {
  const double rel = t - s.start_ms;
  const sim::MobilityStep* begin = steps_.data() + s.first_step;
  const sim::MobilityStep* end = begin + s.step_count;
  // Last step with time <= rel; the first step is at 0 and rel >= 0 at
  // every call site (packets cannot arrive before the session starts).
  const sim::MobilityStep* it = std::upper_bound(
      begin, end, rel, [](double value, const sim::MobilityStep& step) {
        return value < step.time_ms;
      });
  return (it == begin ? begin : it - 1)->as;
}

topology::AsId PacketModel::home_belief(const Spec& s, double t) const {
  const sim::MobilityStep* begin = steps_.data() + s.first_step;
  for (std::uint32_t i = s.step_count; i-- > 1;) {
    const sim::MobilityStep& step = begin[i];
    if (s.start_ms + step.time_ms > t) continue;  // not even sent yet
    const std::optional<double> delay =
        fabric_->path_delay_ms(step.as, s.home_as);
    if (!delay.has_value()) continue;  // registration never arrived
    if (s.start_ms + step.time_ms + *delay <= t) return step.as;
  }
  return begin[0].as;  // initial registration happens at session setup
}

topology::AsId PacketModel::resolver_belief(const Spec& s, double t) const {
  const sim::MobilityStep* begin = steps_.data() + s.first_step;
  const topology::AsId* replicas = replicas_.data() + s.first_replica;
  // Resolutions happen on the TTL grid; if every replica is dead at an
  // epoch the correspondent keeps the previous epoch's answer.
  for (std::int64_t k =
           static_cast<std::int64_t>((t - s.start_ms) / s.ttl_ms);
       k >= 0; --k) {
    const double epoch = s.start_ms + static_cast<double>(k) * s.ttl_ms;
    const topology::AsId* replica = nullptr;
    for (std::uint32_t r = 0; r < s.replica_count; ++r) {
      if (failures_ != nullptr &&
          failures_->resolver_down(replicas[r], epoch)) {
        continue;
      }
      replica = &replicas[r];
      break;
    }
    if (replica == nullptr) continue;
    // The replica's registry lags each step by the registration
    // propagation delay from the new attachment to that replica.
    for (std::uint32_t i = s.step_count; i-- > 1;) {
      const sim::MobilityStep& step = begin[i];
      if (s.start_ms + step.time_ms > epoch) continue;
      const std::optional<double> delay =
          fabric_->path_delay_ms(step.as, *replica);
      if (!delay.has_value()) continue;
      if (s.start_ms + step.time_ms + *delay <= epoch) return step.as;
    }
    return begin[0].as;
  }
  return begin[0].as;
}

topology::AsId PacketModel::router_belief(const Spec& s, topology::AsId at,
                                          double t) const {
  const sim::MobilityStep* begin = steps_.data() + s.first_step;
  for (std::uint32_t i = s.step_count; i-- > 1;) {
    const sim::MobilityStep& step = begin[i];
    if (s.start_ms + step.time_ms > t) continue;
    const std::size_t hops = fabric_->physical_hops(at, step.as);
    if (s.scope_hops != 0xffffffffU && hops > s.scope_hops) continue;
    if (s.start_ms + step.time_ms +
            s.update_hop_ms * static_cast<double>(hops) <=
        t) {
      return step.as;
    }
  }
  return begin[0].as;  // the globally announced initial attachment
}

void PacketModel::finish(const Spec& s, const EventRecord& ev,
                         DeliveryDigest& digest) const {
  if (location_at(s, ev.time_ms) == ev.at) {
    digest.add_delivered(s.digest_id, ev.packet, ev.time_ms, ev.sent_ms,
                         ev.hops, ev.at);
  } else {
    digest.lost += 1;  // stale belief: the mobile has moved on
  }
}

}  // namespace lina::des
