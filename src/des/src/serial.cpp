#include <functional>

#include "lina/des/engine.hpp"
#include "lina/prof/prof.hpp"
#include "lina/sim/event_queue.hpp"

namespace lina::des {

RunStats run_serial(const PacketModel& model) {
  PROF_SPAN("lina.des.serial");
  sim::EventQueue queue;
  RunStats stats;
  // Each record is boxed into a std::function entry on the one global
  // queue — the allocation-per-event reference the flat sharded engine
  // is measured (and bit-compared) against.
  std::function<void(const EventRecord&)> schedule_record =
      [&](const EventRecord& record) {
        queue.schedule(record.time_ms, [&, record] {
          stats.events += 1;
          model.handle(record, stats.digest,
                       [&](const EventRecord& next) {
                         schedule_record(next);
                       });
        });
      };
  for (std::uint32_t i = 0; i < model.session_count(); ++i) {
    schedule_record(model.initial_event(i));
  }
  queue.run();
  return stats;
}

}  // namespace lina::des
