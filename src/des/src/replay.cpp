#include "lina/des/replay.hpp"

#include <algorithm>

#include "lina/prof/prof.hpp"
#include "lina/trace/replay.hpp"

namespace lina::des {

PacketReplayStats replay_packets_streamed(
    const sim::ForwardingFabric& fabric, const trace::ShardSet& set,
    const PacketReplayConfig& config) {
  PROF_SPAN("lina.des.replay");
  const ShardMap map = ShardMap::from_topology(
      fabric.internet(), config.engine.shard_count);
  trace::DeviceTraceStream stream(set);
  PacketReplayStats total;
  std::uint64_t next_user = 0;
  while (!stream.done()) {
    const std::vector<mobility::DeviceTrace> batch =
        stream.next_batch(config.batch_users);
    if (batch.empty()) break;
    PacketModel model(fabric, config.architecture, config.failures);
    for (const mobility::DeviceTrace& trace : batch) {
      SessionParams params;
      // Global user index, not the batch-local session slot: the digest
      // must be invariant across batch sizes.
      params.digest_id = next_user++;
      params.correspondent = config.correspondent;
      params.schedule =
          trace::session_schedule_from_trace(trace, config.hours);
      params.duration_ms = config.hours * 1000.0;
      params.interval_ms = config.interval_ms;
      params.resolver_ttl_ms = config.resolver_ttl_ms;
      if (!config.replicas.empty()) {
        params.resolver_as = config.replicas.front();
        params.resolver_replicas = config.replicas;
      }
      model.add_session(params);
    }
    total.sessions += model.session_count();
    const RunStats run = config.serial
                             ? run_serial(model)
                             : ShardedEngine(model, map, config.engine).run();
    total.digest.combine(run.digest);
    total.events += run.events;
    total.windows += run.windows;
    total.handoffs += run.handoffs;
    total.batches += 1;
    total.redrain_passes += run.redrain_passes;
    total.bundles += run.bundles;
    total.rollbacks += run.rollbacks;
    total.rolled_back_events += run.rolled_back_events;
    if (total.shard_events.size() < run.shard_events.size()) {
      total.shard_events.resize(run.shard_events.size());
    }
    for (std::size_t s = 0; s < run.shard_events.size(); ++s) {
      total.shard_events[s] += run.shard_events[s];
    }
  }
  if (!total.shard_events.empty() && total.events > 0) {
    std::uint64_t max_events = 0;
    for (const std::uint64_t count : total.shard_events) {
      max_events = std::max(max_events, count);
    }
    total.shard_imbalance =
        static_cast<double>(max_events) /
        (static_cast<double>(total.events) /
         static_cast<double>(total.shard_events.size()));
  }
  return total;
}

}  // namespace lina::des
