#include "lina/des/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "lina/exec/parallel.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/prof/prof.hpp"
#include "lina/topology/geo.hpp"

namespace lina::des {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Progress slice used when the topology admits zero-delay cross-shard
/// hops (lookahead 0): windows still advance, and the intra-window
/// re-drain fixpoint carries correctness.
constexpr double kZeroLookaheadWindowMs = 0.25;

/// Min-heap order: earliest time first, FIFO (push sequence) within a
/// time — the same tie-break sim::EventQueue uses.
[[nodiscard]] bool later(const EventRecord& a, const EventRecord& b) {
  if (a.time_ms != b.time_ms) return a.time_ms > b.time_ms;
  return a.seq > b.seq;
}

}  // namespace

ShardMap ShardMap::from_topology(const routing::SyntheticInternet& internet,
                                 std::size_t shard_count) {
  ShardMap map;
  map.shard_count_ = std::max<std::size_t>(1, shard_count);
  const topology::AsGraph& graph = internet.graph();
  const std::span<const topology::GeoPoint> anchors =
      topology::metro_anchors();
  map.shard_of_as_.resize(graph.as_count());
  for (topology::AsId as = 0; as < graph.as_count(); ++as) {
    const topology::GeoPoint at = graph.location(as);
    std::size_t nearest = 0;
    double best = kInf;
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      const double km = topology::great_circle_km(at, anchors[i]);
      if (km < best) {
        best = km;
        nearest = i;
      }
    }
    map.shard_of_as_[as] =
        static_cast<std::uint32_t>(nearest % map.shard_count_);
  }
  return map;
}

void ShardedEngine::ShardQueue::push(EventRecord record) {
  record.seq = next_seq++;
  heap.push_back(record);
  std::push_heap(heap.begin(), heap.end(), later);
}

EventRecord ShardedEngine::ShardQueue::pop() {
  std::pop_heap(heap.begin(), heap.end(), later);
  EventRecord record = heap.back();
  heap.pop_back();
  return record;
}

ShardedEngine::ShardedEngine(const PacketModel& model, const ShardMap& map,
                             EngineConfig config)
    : model_(&model), map_(&map), config_(config) {
  if (std::isnan(config_.window_ms) || config_.window_ms < 0.0)
    throw std::invalid_argument("ShardedEngine: bad window_ms");
  config_.shard_count = map.shard_count();
  shards_.resize(config_.shard_count);
  mailboxes_.resize(config_.shard_count * config_.shard_count);
  lookahead_ms_ =
      config_.window_ms > 0.0 ? config_.window_ms : auto_window_ms();
}

std::uint32_t ShardedEngine::owner_shard(const EventRecord& record) const {
  return map_->shard_of(record.at);
}

double ShardedEngine::auto_window_ms() const {
  // The conservative safe horizon: the smallest delay any cross-shard
  // handoff can carry. Same-shard events never cross a barrier, so only
  // links whose endpoints map to different shards bound the window.
  const topology::AsGraph& graph = model_->fabric().internet().graph();
  double min_delay = kInf;
  for (topology::AsId as = 0; as < graph.as_count(); ++as) {
    for (const topology::AsGraph::Link& link : graph.links(as)) {
      if (link.neighbor < as) continue;  // each adjacency once
      if (map_->shard_of(as) == map_->shard_of(link.neighbor)) continue;
      min_delay =
          std::min(min_delay, model_->fabric().link_delay_ms(as,
                                                             link.neighbor));
    }
  }
  if (min_delay <= 0.0) return kZeroLookaheadWindowMs;
  return min_delay;  // kInf when the whole topology fits one shard
}

RunStats ShardedEngine::run() {
  PROF_SPAN("lina.des.run");
  const std::size_t shard_count = config_.shard_count;
  RunStats stats;
  stats.lookahead_ms = lookahead_ms_;
  for (std::uint32_t i = 0; i < model_->session_count(); ++i) {
    const EventRecord record = model_->initial_event(i);
    shards_[owner_shard(record)].push(record);
  }
  const auto global_min = [&] {
    double min_time = kInf;
    for (const ShardQueue& shard : shards_) {
      if (!shard.empty()) min_time = std::min(min_time, shard.top_time());
    }
    return min_time;
  };
  std::vector<std::uint64_t> received(shard_count, 0);
  std::vector<std::uint8_t> early(shard_count, 0);
  std::uint64_t redrain_passes = 0;
  double window_start = global_min();
  while (window_start < kInf) {
    const double horizon = window_start + lookahead_ms_;
    stats.windows += 1;
    bool rerun_window = true;
    while (rerun_window) {
      {
        PROF_SPAN("lina.des.window");
        exec::parallel_for(
            shard_count,
            [&](std::size_t s) {
              ShardQueue& shard = shards_[s];
              const auto emit = [&](const EventRecord& next) {
                const std::uint32_t owner = owner_shard(next);
                if (owner == s) {
                  shard.push(next);
                } else {
                  mailboxes_[s * shard_count + owner].push_back(next);
                }
              };
              while (!shard.empty() && shard.top_time() < horizon) {
                const EventRecord record = shard.pop();
                shard.executed += 1;
                model_->handle(record, shard.digest, emit);
              }
            },
            config_.threads);
      }
      {
        // Barrier reached: hand mailbox columns to their owners. Each
        // box has exactly one writer (the source shard, last window
        // pass) and one reader (here), sequenced by the pool join.
        PROF_SPAN("lina.des.drain");
        exec::parallel_for(
            shard_count,
            [&](std::size_t dst) {
              early[dst] = 0;
              for (std::size_t src = 0; src < shard_count; ++src) {
                std::vector<EventRecord>& box =
                    mailboxes_[src * shard_count + dst];
                for (const EventRecord& record : box) {
                  if (record.time_ms < horizon) early[dst] = 1;
                  shards_[dst].push(record);
                }
                received[dst] += box.size();
                box.clear();
              }
            },
            config_.threads);
      }
      // A handoff that landed inside the still-open window (zero
      // lookahead only) must run before the window closes: go around
      // again. Chains are bounded by the packet hop TTL, so the fixpoint
      // terminates.
      rerun_window = false;
      for (std::size_t s = 0; s < shard_count; ++s) {
        if (early[s] != 0) rerun_window = true;
      }
      if (rerun_window) redrain_passes += 1;
    }
    const double next_time = global_min();
    if (next_time >= kInf) break;
    // Advance at least one window; skip straight to the window holding
    // the next event so sparse periods cost no empty barriers.
    window_start = horizon;
    if (lookahead_ms_ < kInf && next_time > horizon) {
      window_start =
          horizon +
          lookahead_ms_ * std::floor((next_time - horizon) / lookahead_ms_);
    }
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    stats.digest.combine(shards_[s].digest);
    stats.events += shards_[s].executed;
    stats.handoffs += received[s];
  }
  stats.redrain_passes = redrain_passes;
  obs::metric::des_events_executed().add(stats.events);
  obs::metric::des_windows().add(stats.windows);
  obs::metric::des_handoffs().add(stats.handoffs);
  obs::metric::des_redrain_passes().add(stats.redrain_passes);
  obs::metric::des_shards().set(static_cast<double>(shard_count));
  obs::metric::des_lookahead_ms().set(
      lookahead_ms_ < kInf ? lookahead_ms_ : -1.0);
  return stats;
}

}  // namespace lina::des
