#include "lina/des/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "lina/des/detail.hpp"
#include "lina/exec/parallel.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/prof/prof.hpp"
#include "lina/topology/geo.hpp"

namespace lina::des {

std::size_t ShardMap::nearest_anchor(
    const topology::GeoPoint& at,
    std::span<const topology::GeoPoint> anchors) {
  std::size_t nearest = 0;
  double best = detail::kInf;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    const double km = topology::great_circle_km(at, anchors[i]);
    // Strict less-than: equidistant anchors keep the lowest index (the
    // documented tie-break — see engine.hpp; pinned by tests/des).
    if (km < best) {
      best = km;
      nearest = i;
    }
  }
  return nearest;
}

ShardMap ShardMap::from_topology(const routing::SyntheticInternet& internet,
                                 std::size_t shard_count) {
  ShardMap map;
  map.shard_count_ = std::max<std::size_t>(1, shard_count);
  const topology::AsGraph& graph = internet.graph();
  const std::span<const topology::GeoPoint> anchors =
      topology::metro_anchors();
  map.shard_of_as_.resize(graph.as_count());
  for (topology::AsId as = 0; as < graph.as_count(); ++as) {
    map.shard_of_as_[as] = static_cast<std::uint32_t>(
        nearest_anchor(graph.location(as), anchors) % map.shard_count_);
  }
  return map;
}

void ShardedEngine::ShardQueue::push(EventRecord record) {
  record.seq = next_seq++;
  heap.push_back(record);
  std::push_heap(heap.begin(), heap.end(), detail::later);
}

void ShardedEngine::ShardQueue::append_raw(EventRecord record) {
  record.seq = next_seq++;
  heap.push_back(record);
}

void ShardedEngine::ShardQueue::restore_heap() {
  std::make_heap(heap.begin(), heap.end(), detail::later);
}

bool ShardedEngine::ShardQueue::remove_match(const EventRecord& r) {
  // Backward scan: rollback retracts recently emitted records, which sit
  // near the heap's tail.
  for (std::size_t i = heap.size(); i-- > 0;) {
    if (same_event(heap[i], r)) {
      heap[i] = heap.back();
      heap.pop_back();
      return true;
    }
  }
  return false;
}

EventRecord ShardedEngine::ShardQueue::pop() {
  std::pop_heap(heap.begin(), heap.end(), detail::later);
  EventRecord record = heap.back();
  heap.pop_back();
  return record;
}

ShardedEngine::ShardedEngine(const PacketModel& model, const ShardMap& map,
                             EngineConfig config)
    : model_(&model), map_(&map), config_(config) {
  if (std::isnan(config_.window_ms) || config_.window_ms < 0.0)
    throw std::invalid_argument("ShardedEngine: bad window_ms");
  if (!(config_.speculation_windows > 0.0) ||
      !std::isfinite(config_.speculation_windows))
    throw std::invalid_argument("ShardedEngine: bad speculation_windows");
  config_.shard_count = map.shard_count();
  const std::size_t shard_count = config_.shard_count;
  shards_.resize(shard_count);
  mailboxes_.resize(shard_count * shard_count);
  received_.assign(shard_count, 0);
  bundles_.assign(shard_count, 0);
  if (config_.sync == SyncMode::kOptimistic) {
    staged_.resize(shard_count * shard_count);
    logs_.resize(shard_count);
    clock_.assign(shard_count, -detail::kInf);
    rollbacks_.assign(shard_count, 0);
    rolled_back_.assign(shard_count, 0);
  }
  lookahead_ms_ =
      config_.window_ms > 0.0 ? config_.window_ms : auto_window_ms();
}

std::uint32_t ShardedEngine::owner_shard(const EventRecord& record) const {
  return map_->shard_of(record.at);
}

double ShardedEngine::auto_window_ms() const {
  // The conservative safe horizon: the smallest delay any cross-shard
  // handoff can carry. Same-shard events never cross a barrier, so only
  // links whose endpoints map to different shards bound the window.
  const topology::AsGraph& graph = model_->fabric().internet().graph();
  double min_delay = detail::kInf;
  for (topology::AsId as = 0; as < graph.as_count(); ++as) {
    for (const topology::AsGraph::Link& link : graph.links(as)) {
      if (link.neighbor < as) continue;  // each adjacency once
      if (map_->shard_of(as) == map_->shard_of(link.neighbor)) continue;
      min_delay =
          std::min(min_delay, model_->fabric().link_delay_ms(as,
                                                             link.neighbor));
    }
  }
  if (min_delay <= 0.0) return detail::kZeroLookaheadWindowMs;
  return min_delay;  // kInf when the whole topology fits one shard
}

void ShardedEngine::seed_sessions() {
  for (std::uint32_t i = 0; i < model_->session_count(); ++i) {
    const EventRecord record = model_->initial_event(i);
    shards_[owner_shard(record)].push(record);
  }
}

double ShardedEngine::global_min_time() const {
  double min_time = detail::kInf;
  for (const ShardQueue& shard : shards_) {
    if (!shard.empty()) min_time = std::min(min_time, shard.top_time());
  }
  return min_time;
}

void ShardedEngine::finish_stats(RunStats& stats) const {
  const std::size_t shard_count = config_.shard_count;
  stats.lookahead_ms = lookahead_ms_;
  stats.shard_events.resize(shard_count);
  std::uint64_t max_events = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    stats.digest.combine(shards_[s].digest);
    stats.events += shards_[s].executed;
    stats.handoffs += received_[s];
    stats.bundles += bundles_[s];
    stats.shard_events[s] = shards_[s].executed;
    max_events = std::max(max_events, shards_[s].executed);
    obs::metric::des_shard_events().record(
        static_cast<double>(shards_[s].executed));
  }
  if (config_.sync == SyncMode::kOptimistic) {
    for (std::size_t s = 0; s < shard_count; ++s) {
      stats.rollbacks += rollbacks_[s];
      stats.rolled_back_events += rolled_back_[s];
    }
  }
  if (stats.events > 0) {
    const double mean = static_cast<double>(stats.events) /
                        static_cast<double>(shard_count);
    stats.shard_imbalance = static_cast<double>(max_events) / mean;
  }
  obs::metric::des_events_executed().add(stats.events);
  obs::metric::des_windows().add(stats.windows);
  obs::metric::des_handoffs().add(stats.handoffs);
  obs::metric::des_redrain_passes().add(stats.redrain_passes);
  obs::metric::des_bundles_sealed().add(stats.bundles);
  obs::metric::des_rollbacks().add(stats.rollbacks);
  obs::metric::des_rolled_back_events().add(stats.rolled_back_events);
  obs::metric::des_shards().set(static_cast<double>(shard_count));
  obs::metric::des_shard_imbalance().set(stats.shard_imbalance);
  obs::metric::des_lookahead_ms().set(
      lookahead_ms_ < detail::kInf ? lookahead_ms_ : -1.0);
}

RunStats ShardedEngine::run() {
  PROF_SPAN("lina.des.run");
  seed_sessions();
  return config_.sync == SyncMode::kOptimistic ? run_optimistic()
                                               : run_conservative();
}

RunStats ShardedEngine::run_conservative() {
  const std::size_t shard_count = config_.shard_count;
  RunStats stats;
  std::vector<std::uint8_t> early(shard_count, 0);
  double window_start = global_min_time();
  while (window_start < detail::kInf) {
    const double horizon = window_start + lookahead_ms_;
    stats.windows += 1;
    bool rerun_window = true;
    while (rerun_window) {
      {
        PROF_SPAN("lina.des.window");
        exec::parallel_for(
            shard_count,
            [&](std::size_t s) {
              ShardQueue& shard = shards_[s];
              const auto emit = [&](const EventRecord& next) {
                const std::uint32_t owner = owner_shard(next);
                if (owner == s) {
                  shard.push(next);
                } else {
                  mailboxes_[s * shard_count + owner].append(next);
                }
              };
              while (!shard.empty() && shard.top_time() < horizon) {
                const EventRecord record = shard.pop();
                shard.executed += 1;
                model_->handle(record, shard.digest, emit);
              }
            },
            config_.threads);
      }
      {
        // Barrier reached: hand mailbox columns to their owners. Each
        // chain has exactly one writer (the source shard, last window
        // pass) and one reader (here), sequenced by the pool join.
        PROF_SPAN("lina.des.drain");
        exec::parallel_for(
            shard_count,
            [&](std::size_t dst) {
              early[dst] = 0;
              for (std::size_t src = 0; src < shard_count; ++src) {
                BundleChain& box = mailboxes_[src * shard_count + dst];
                bundles_[dst] += box.pending_bundles();
                received_[dst] += box.drain([&](const EventRecord& record) {
                  if (record.time_ms < horizon) early[dst] = 1;
                  shards_[dst].push(record);
                });
              }
            },
            config_.threads);
      }
      // A handoff that landed inside the still-open window (zero
      // lookahead only) must run before the window closes: go around
      // again. Chains are bounded by the packet hop TTL, so the fixpoint
      // terminates.
      rerun_window = false;
      for (std::size_t s = 0; s < shard_count; ++s) {
        if (early[s] != 0) rerun_window = true;
      }
      if (rerun_window) stats.redrain_passes += 1;
    }
    const double next_time = global_min_time();
    if (next_time >= detail::kInf) break;
    // Advance at least one window; skip straight to the window holding
    // the next event so sparse periods cost no empty barriers.
    window_start = horizon;
    if (lookahead_ms_ < detail::kInf && next_time > horizon) {
      window_start =
          horizon +
          lookahead_ms_ * std::floor((next_time - horizon) / lookahead_ms_);
    }
  }
  finish_stats(stats);
  return stats;
}

}  // namespace lina::des
