// Optimistic (rollback) sync mode (DESIGN.md §4j).
//
// Cycle shape: (1) every shard speculatively drains its heap up to
// GVT + speculation_windows × lookahead, logging each record and staging
// cross-shard emissions; (2) the barrier computes GVT = the minimum
// timestamp across all heap tops and staged records; (3) staged records
// whose *emitting* event is at or below GVT are released into the bundled
// mailboxes (the emitter can never be rolled back, so no anti-messages
// are ever needed); (4) mailboxes drain — a record below the destination
// shard's speculative clock is a straggler and triggers rollback() — and
// undo logs commit through GVT.
//
// Why this is safe (the invariants tests/des pin):
//  - Every future event (heap entry or staged record) has time >= GVT,
//    so committed log entries (time <= GVT) are final.
//  - A rolled-back event has time above a straggler >= GVT, so its
//    staged emissions (emit_ms = its time > GVT) were never released:
//    rollback only ever touches the shard's own heap and staging rows.
//  - The undo log is in processing order (nondecreasing time), so a
//    speculatively executed descendant is undone before its parent; the
//    descendant's re-pushed record is then removed by the parent's
//    emission retraction, leaving exactly the parent to re-execute.
//  - GVT is monotone and the event at GVT always executes within one
//    cycle (it is a heap top, or staged with emit_ms <= its time = GVT,
//    hence released), so the loop makes progress; zero-delay chains are
//    bounded by the packet hop TTL.

#include <algorithm>
#include <vector>

#include "lina/des/detail.hpp"
#include "lina/des/engine.hpp"
#include "lina/exec/parallel.hpp"
#include "lina/prof/prof.hpp"

namespace lina::des {

std::uint64_t ShardedEngine::rollback(std::size_t s, double straggler_ms) {
  UndoLog& log = logs_[s];
  if (log.empty() || log.back().time_ms <= straggler_ms) return 0;
  const std::size_t shard_count = config_.shard_count;
  ShardQueue& shard = shards_[s];
  std::uint64_t undone = 0;
  while (!log.empty() && log.back().time_ms > straggler_ms) {
    const EventRecord record = log.pop_back();
    // Handlers are pure: re-running the record regenerates its digest
    // delta and emissions byte-for-byte, so undo is subtract + retract.
    DeliveryDigest delta;
    model_->handle(record, delta, [&](const EventRecord& out) {
      const std::uint32_t owner = owner_shard(out);
      if (owner == s) {
        shard.remove_match(out);
        return;
      }
      std::vector<StagedRecord>& staged = staged_[s * shard_count + owner];
      for (std::size_t i = staged.size(); i-- > 0;) {
        if (same_event(staged[i].record, out)) {
          staged[i] = staged.back();
          staged.pop_back();
          break;
        }
      }
    });
    shard.digest.subtract(delta);
    shard.executed -= 1;
    shard.append_raw(record);  // re-execute in straggler-consistent order
    ++undone;
  }
  shard.restore_heap();
  // The newest surviving log entry is the shard's new speculative clock;
  // with nothing uncommitted left, the straggler itself is an upper
  // bound on every committed entry's time.
  clock_[s] = log.empty() ? straggler_ms : log.back().time_ms;
  rollbacks_[s] += 1;
  rolled_back_[s] += undone;
  return undone;
}

RunStats ShardedEngine::run_optimistic() {
  const std::size_t shard_count = config_.shard_count;
  RunStats stats;
  const double spec_ms = lookahead_ms_ < detail::kInf
                             ? lookahead_ms_ * config_.speculation_windows
                             : detail::kInf;
  double gvt = global_min_time();  // nothing staged before the first pass
  while (gvt < detail::kInf) {
    stats.windows += 1;
    const double bound = gvt + spec_ms;
    {
      PROF_SPAN("lina.des.speculate");
      exec::parallel_for(
          shard_count,
          [&](std::size_t s) {
            ShardQueue& shard = shards_[s];
            double current = clock_[s];
            const auto emit = [&](const EventRecord& next) {
              const std::uint32_t owner = owner_shard(next);
              if (owner == s) {
                shard.push(next);
              } else {
                staged_[s * shard_count + owner].push_back({current, next});
              }
            };
            while (!shard.empty() && shard.top_time() < bound) {
              const EventRecord record = shard.pop();
              logs_[s].push(record);
              current = record.time_ms;
              shard.executed += 1;
              model_->handle(record, shard.digest, emit);
            }
            clock_[s] = current;
          },
          config_.threads);
    }
    // Barrier: GVT is the least timestamp any unexecuted event can carry
    // — a heap entry, or a staged record not yet delivered. Everything at
    // or below it is final.
    gvt = detail::kInf;
    for (const ShardQueue& shard : shards_) {
      if (!shard.empty()) gvt = std::min(gvt, shard.top_time());
    }
    for (const std::vector<StagedRecord>& staged : staged_) {
      for (const StagedRecord& entry : staged) {
        gvt = std::min(gvt, entry.record.time_ms);
      }
    }
    if (gvt >= detail::kInf) break;
    {
      // Release: a staged record whose emitter committed (emit_ms <= GVT)
      // can never be retracted — seal it into the bundled mailbox. The
      // rest stay staged, order preserved.
      PROF_SPAN("lina.des.release");
      exec::parallel_for(
          shard_count,
          [&](std::size_t src) {
            for (std::size_t dst = 0; dst < shard_count; ++dst) {
              if (dst == src) continue;
              std::vector<StagedRecord>& staged =
                  staged_[src * shard_count + dst];
              std::size_t keep = 0;
              for (std::size_t i = 0; i < staged.size(); ++i) {
                if (staged[i].emit_ms <= gvt) {
                  mailboxes_[src * shard_count + dst].append(
                      staged[i].record);
                } else {
                  staged[keep++] = staged[i];
                }
              }
              staged.resize(keep);
            }
          },
          config_.threads);
    }
    {
      // Drain + commit: same single-writer/single-reader chains as the
      // conservative barrier. A record below the shard's speculative
      // clock is a straggler: rewind past it, then enqueue it normally.
      PROF_SPAN("lina.des.drain");
      exec::parallel_for(
          shard_count,
          [&](std::size_t dst) {
            for (std::size_t src = 0; src < shard_count; ++src) {
              BundleChain& box = mailboxes_[src * shard_count + dst];
              bundles_[dst] += box.pending_bundles();
              received_[dst] += box.drain([&](const EventRecord& record) {
                if (record.time_ms < clock_[dst]) {
                  rollback(dst, record.time_ms);
                }
                shards_[dst].push(record);
              });
            }
            logs_[dst].commit_through(gvt);
          },
          config_.threads);
    }
  }
  finish_stats(stats);
  return stats;
}

}  // namespace lina::des
