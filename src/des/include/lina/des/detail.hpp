#pragma once

// Internals shared by the engine's sync-mode translation units
// (src/engine.cpp, src/optimistic.cpp). Not part of the public surface.

#include <limits>

#include "lina/des/event.hpp"

namespace lina::des::detail {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Progress slice used when the topology admits zero-delay cross-shard
/// hops (lookahead 0): windows still advance, and the intra-window
/// re-drain fixpoint (conservative) or rollback (optimistic) carries
/// correctness.
inline constexpr double kZeroLookaheadWindowMs = 0.25;

/// Min-heap order: earliest time first, FIFO (push sequence) within a
/// time — the same tie-break sim::EventQueue uses.
[[nodiscard]] inline bool later(const EventRecord& a, const EventRecord& b) {
  if (a.time_ms != b.time_ms) return a.time_ms > b.time_ms;
  return a.seq > b.seq;
}

}  // namespace lina::des::detail
