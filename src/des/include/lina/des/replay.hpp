#pragma once

// Out-of-core packet replay: sessions stream out of a lina::trace shard
// set in bounded user batches; each batch becomes a PacketModel and runs
// through the sharded engine (or the serial reference), and the
// per-batch digests fold commutatively — so peak memory is one decoded
// batch plus the per-shard event heaps, no matter how many users the set
// holds, and the combined digest is invariant across batch size, shard
// count, and thread count.

#include <cstdint>
#include <vector>

#include "lina/des/engine.hpp"
#include "lina/trace/streaming.hpp"

namespace lina::des {

struct PacketReplayConfig {
  sim::SimArchitecture architecture = sim::SimArchitecture::kIndirection;
  /// Trace hours replayed per user (1 simulated second per trace hour).
  double hours = 24.0;
  double interval_ms = 1000.0;
  double resolver_ttl_ms = 200.0;
  /// Correspondent AS every session streams from.
  topology::AsId correspondent = 0;
  /// Resolver placement: the single resolver is replicas.front(); the
  /// replicated architecture uses the whole pool.
  std::vector<topology::AsId> replicas;
  std::size_t batch_users = 8192;
  EngineConfig engine;
  const sim::FailurePlan* failures = nullptr;
  /// Run the serial sim::EventQueue reference instead of the sharded
  /// engine (for identity gates).
  bool serial = false;
};

struct PacketReplayStats {
  DeliveryDigest digest;
  std::uint64_t sessions = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t batches = 0;
  std::uint64_t redrain_passes = 0;
  std::uint64_t bundles = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t rolled_back_events = 0;
  /// Per-engine-shard event totals summed across batches (empty for the
  /// serial reference).
  std::vector<std::uint64_t> shard_events;
  /// max/mean of shard_events (1.0 = balanced; 0 when serial or empty).
  double shard_imbalance = 0.0;
};

/// Streams every user of `set` through the packet engine. Throws
/// std::invalid_argument on a config the model rejects.
[[nodiscard]] PacketReplayStats replay_packets_streamed(
    const sim::ForwardingFabric& fabric, const trace::ShardSet& set,
    const PacketReplayConfig& config);

}  // namespace lina::des
