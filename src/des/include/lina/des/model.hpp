#pragma once

// The packet-forwarding model both DES drivers execute (DESIGN.md §4i).
//
// Every event handler is a *pure function* of the event record, the
// immutable session arena, and point-in-time queries against the shared
// ForwardingFabric / FailurePlan (both deterministic, build-once memoized
// values). No handler mutates state another handler can observe, so the
// multiset of delivered packets — and therefore the DeliveryDigest — is
// invariant under any execution order of the same event set. That is the
// lemma that makes the sharded engine bit-identical to the serial
// sim::EventQueue loop at any shard count and thread count.
//
// Architecture semantics (who the correspondent/routers believe the
// mobile is attached to) are *closed-form in time*: beliefs are derived
// from the mobility schedule plus control-propagation delays, not from
// mutable registries. Control-plane propagation (registrations, update
// wavefronts) rides the healthy-topology delays; the data plane consults
// the failure-aware fabric routes and control-process crash windows.

#include <cstdint>
#include <optional>
#include <vector>

#include "lina/des/event.hpp"
#include "lina/sim/fabric.hpp"
#include "lina/sim/failure_plan.hpp"
#include "lina/sim/session.hpp"

namespace lina::des {

/// One correspondent -> mobile CBR session fed to the engine. Mirrors the
/// sim::SessionConfig knobs the packet model supports; schedule times are
/// relative to start_ms, first step at 0 (session_schedule_from_trace's
/// contract).
struct SessionParams {
  topology::AsId correspondent = 0;
  std::vector<sim::MobilityStep> schedule;
  double start_ms = 0.0;
  double duration_ms = 10000.0;
  double interval_ms = 20.0;
  /// Indirection relay; defaults to the initial attachment.
  std::optional<topology::AsId> home_as;
  /// Name resolution: the resolver (required for kNameResolution).
  std::optional<topology::AsId> resolver_as;
  /// Replicated resolution: the replica pool (required for
  /// kReplicatedResolution; the correspondent resolves at the nearest
  /// live replica, ties broken by AS id).
  std::vector<topology::AsId> resolver_replicas;
  double resolver_ttl_ms = 500.0;
  /// Name-based routing: per-physical-hop latency of the update wavefront.
  double update_hop_ms = 5.0;
  /// Name-based routing: flooding scope in physical hops (SIZE_MAX =
  /// global).
  std::size_t update_scope_hops = SIZE_MAX;
  /// Global identity folded into the delivery digest (defaults to the
  /// session's index in this model). Out-of-core replay sets it to the
  /// global user index so the digest is invariant across batch sizes.
  std::optional<std::uint64_t> digest_id;
};

/// The immutable session arena plus the event handlers. Build it (add
/// every session), then hand it to ShardedEngine / run_serial; handle()
/// is const and thread-safe.
class PacketModel {
 public:
  PacketModel(const sim::ForwardingFabric& fabric,
              sim::SimArchitecture architecture,
              const sim::FailurePlan* failures = nullptr,
              std::size_t packet_ttl_hops = 64);

  /// Validates and appends one session; returns its index. Throws
  /// std::invalid_argument on malformed params (empty/unsorted schedule,
  /// first step not at 0, non-finite or non-positive interval/duration,
  /// missing resolver/replicas for the resolution architectures).
  std::uint32_t add_session(const SessionParams& params);

  [[nodiscard]] std::size_t session_count() const { return specs_.size(); }
  [[nodiscard]] const sim::ForwardingFabric& fabric() const {
    return *fabric_;
  }
  [[nodiscard]] sim::SimArchitecture architecture() const { return arch_; }

  /// The session's first event: the kEmit that launches packet 0 at
  /// start_ms from the correspondent.
  [[nodiscard]] EventRecord initial_event(std::uint32_t session) const;

  /// Executes one event: updates `digest` and emits follow-up records via
  /// `emit(const EventRecord&)`. Pure with respect to engine state; safe
  /// to call concurrently from any thread for any events.
  template <typename Emit>
  void handle(const EventRecord& ev, DeliveryDigest& digest,
              Emit&& emit) const {
    const Spec& s = specs_[ev.session];
    const double t = ev.time_ms;
    if (ev.type == EventType::kEmit) {
      digest.sent += 1;
      const double next = t + s.interval_ms;
      if (next < s.start_ms + s.duration_ms) {
        EventRecord rearm = ev;
        rearm.time_ms = next;
        rearm.packet = ev.packet + 1;
        emit(rearm);
      }
      EventRecord hop;
      hop.type = EventType::kHop;
      hop.time_ms = t;
      hop.sent_ms = t;
      hop.session = ev.session;
      hop.packet = ev.packet;
      hop.at = s.correspondent;
      hop.hops = 0;
      hop.stage = HopStage::kFinal;
      switch (arch_) {
        case sim::SimArchitecture::kIndirection:
          hop.dest = s.home_as;
          hop.stage = HopStage::kRelay;
          break;
        case sim::SimArchitecture::kNameResolution:
        case sim::SimArchitecture::kReplicatedResolution:
          hop.dest = resolver_belief(s, t);
          break;
        case sim::SimArchitecture::kNameBased:
          hop.dest = router_belief(s, s.correspondent, t);
          break;
      }
      emit(hop);
      return;
    }
    // kHop.
    digest.hop_events += 1;
    const std::uint32_t at = ev.at;
    std::uint32_t dest = ev.dest;
    if (arch_ == sim::SimArchitecture::kNameBased) {
      // Per-router belief: every hop re-aims at where *this* router
      // currently thinks the mobile is (the update wavefront may not have
      // reached it yet — transient loops are bounded by the hop TTL).
      dest = router_belief(s, at, t);
    }
    if (at == dest) {
      if (ev.stage == HopStage::kRelay) {
        // At the indirection relay: re-address to the registered care-of
        // AS and keep forwarding (same instant, same router).
        if (failures_ != nullptr && failures_->home_agent_down(at, t)) {
          digest.lost += 1;
          return;
        }
        EventRecord fwd = ev;
        fwd.stage = HopStage::kFinal;
        fwd.dest = home_belief(s, t);
        if (fwd.dest == at) {
          finish(s, fwd, digest);
          return;
        }
        emit(fwd);
        return;
      }
      finish(s, ev, digest);
      return;
    }
    if (ev.hops >= packet_ttl_hops_) {
      digest.lost += 1;
      return;
    }
    const std::optional<topology::AsId> next =
        (failures_ != nullptr && failures_->data_plane_impaired(t))
            ? fabric_->next_hop(at, dest, *failures_, t)
            : fabric_->next_hop(at, dest);
    if (!next.has_value() || *next == at) {
      digest.lost += 1;
      return;
    }
    EventRecord n = ev;
    n.at = *next;
    n.dest = dest;
    n.hops = static_cast<std::uint16_t>(ev.hops + 1);
    n.time_ms = t + fabric_->link_delay_ms(at, *next);
    emit(n);
  }

 private:
  struct Spec {
    std::uint64_t digest_id = 0;
    topology::AsId correspondent = 0;
    topology::AsId home_as = 0;
    std::uint32_t first_step = 0;
    std::uint32_t step_count = 0;
    std::uint32_t first_replica = 0;  // into replicas_ (resolution archs)
    std::uint32_t replica_count = 0;
    double start_ms = 0.0;
    double duration_ms = 0.0;
    double interval_ms = 0.0;
    double ttl_ms = 0.0;
    double update_hop_ms = 0.0;
    std::uint32_t scope_hops = 0;  // UINT32_MAX = global
  };

  /// Where the mobile actually is at absolute time `t`.
  [[nodiscard]] topology::AsId location_at(const Spec& s, double t) const;

  /// The care-of AS the indirection relay believes at `t`: the latest
  /// step whose registration (riding the healthy policy route from the
  /// new attachment to the relay) has arrived by `t`; the initial
  /// attachment is always known.
  [[nodiscard]] topology::AsId home_belief(const Spec& s, double t) const;

  /// The location the correspondent's resolver answer points at when a
  /// packet is emitted at `t`: resolutions happen on the TTL grid
  /// (epochs start_ms + k*ttl); the answering replica is the nearest one
  /// alive at the epoch, and its knowledge lags each step by the
  /// registration propagation delay to that replica.
  [[nodiscard]] topology::AsId resolver_belief(const Spec& s,
                                               double t) const;

  /// Name-based routing: what router `at` believes at `t` under the
  /// scoped update wavefront (step i reaches `at` after update_hop_ms per
  /// physical hop; routers beyond scope_hops never learn it; the initial
  /// attachment is globally announced).
  [[nodiscard]] topology::AsId router_belief(const Spec& s,
                                             topology::AsId at,
                                             double t) const;

  /// Final-arrival bookkeeping: delivered iff the mobile is attached at
  /// the arrival AS at the arrival instant, lost otherwise (staleness).
  void finish(const Spec& s, const EventRecord& ev,
              DeliveryDigest& digest) const;

  const sim::ForwardingFabric* fabric_;
  sim::SimArchitecture arch_;
  const sim::FailurePlan* failures_;
  std::uint16_t packet_ttl_hops_;
  std::vector<Spec> specs_;
  std::vector<sim::MobilityStep> steps_;      // per-session slices
  std::vector<topology::AsId> replicas_;      // nearest-first per session
};

}  // namespace lina::des
