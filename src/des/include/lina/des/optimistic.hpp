#pragma once

// Optimistic (rollback) sync support types (DESIGN.md §4j).
//
// In optimistic mode shards execute speculatively past the conservative
// horizon. Three invariants keep rollback local and anti-message-free:
//
//  1. Handlers are pure functions of (record, immutable specs), so
//     re-running an event regenerates its digest delta and emissions
//     byte-for-byte — the undo log stores nothing but the records.
//  2. Cross-shard emissions are *staged* per shard and released only
//     once their emitting event's timestamp is at or below the GVT
//     computed at the pool barrier. A rollback therefore only ever
//     retracts records the shard still owns (its heap and its staging);
//     nothing speculative has crossed a shard boundary.
//  3. The digest fold is commutative and invertible
//     (DeliveryDigest::subtract), so undo is an exact arithmetic rewind.
//
// Rollback = pop undo-log entries newer than the straggler, subtract each
// entry's recomputed digest delta, retract its recomputed emissions from
// the heap/staging, and push the entry back into the heap to re-execute
// in straggler-consistent order.

#include <cstddef>
#include <vector>

#include "lina/des/event.hpp"

namespace lina::des {

/// A cross-shard emission held back until its emitting event commits.
/// `emit_ms` is the emitting event's timestamp: once GVT reaches it the
/// event can never be rolled back, so the record is safe to release into
/// the bundled mailbox.
struct StagedRecord {
  double emit_ms = 0.0;
  EventRecord record;
};

/// Per-shard log of speculatively processed records, in processing
/// (nondecreasing time) order. Entries at or below GVT are committed —
/// reclaimed lazily, never rolled back; entries above it can be popped
/// off the tail by a straggler.
class UndoLog {
 public:
  void push(const EventRecord& record) { entries_.push_back(record); }

  /// True when nothing uncommitted remains.
  [[nodiscard]] bool empty() const { return head_ == entries_.size(); }
  [[nodiscard]] std::size_t uncommitted() const {
    return entries_.size() - head_;
  }

  /// Newest uncommitted entry. Precondition: !empty().
  [[nodiscard]] const EventRecord& back() const { return entries_.back(); }

  /// Pop the newest uncommitted entry. Precondition: !empty(). Callers
  /// only pop entries with time above a straggler timestamp >= GVT, so
  /// the committed head is never popped.
  EventRecord pop_back() {
    const EventRecord record = entries_.back();
    entries_.pop_back();
    return record;
  }

  /// GVT advanced to `gvt` at a barrier: entries with time <= gvt can
  /// never be rolled back. Reclaims their storage (wholesale when the
  /// log fully commits, by compaction once the dead head dominates).
  void commit_through(double gvt) {
    while (head_ < entries_.size() && entries_[head_].time_ms <= gvt) {
      ++head_;
    }
    if (head_ == entries_.size()) {
      entries_.clear();
      head_ = 0;
    } else if (head_ >= kCompactAt && head_ * 2 >= entries_.size()) {
      entries_.erase(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

 private:
  static constexpr std::size_t kCompactAt = 4096;

  std::vector<EventRecord> entries_;
  std::size_t head_ = 0;  // entries below head_ are committed
};

}  // namespace lina::des
