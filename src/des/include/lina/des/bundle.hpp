#pragma once

// Cache-line-aligned cross-shard event bundles (DESIGN.md §4j).
//
// PR 9's mailboxes were plain std::vector<EventRecord>: every cross-shard
// handoff was one push_back, and the barrier drain walked record-at-a-time
// through whatever the vector growth policy left in memory. A BundleChain
// packs the same records into fixed-size 1 KiB bundles (21 × 48-byte
// records plus a count word, aligned to the cache line so a bundle never
// straddles a line it doesn't own), recycled from a per-chain arena across
// windows — once a chain has seen its peak window, the steady state
// allocates nothing. The drain side hands records over bundle-at-a-time,
// prefetching the next bundle while the current one is consumed, which is
// what cuts the barrier-adjacent time at shard counts >= 4.
//
// Concurrency contract (same as the PR 9 vectors): each chain has exactly
// one writer (the source shard's worker, during a window pass) and one
// reader (the destination shard's worker, at the barrier drain), sequenced
// by the lina::exec pool join — single writer, single reader, no locks,
// never concurrent.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lina/des/event.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define LINA_DES_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define LINA_DES_PREFETCH(addr) ((void)0)
#endif

namespace lina::des {

/// One fixed-size batch of event records. 21 records × 48 B + the count
/// word pads to exactly 1 KiB (16 cache lines) under alignas(64), so
/// bundles tile the arena with no partial lines shared between bundles.
struct alignas(64) EventBundle {
  static constexpr std::size_t kRecords = 21;

  std::uint32_t count = 0;
  EventRecord records[kRecords];

  [[nodiscard]] bool full() const { return count == kRecords; }
};

static_assert(sizeof(EventBundle) == 1024,
              "bundles must tile the arena in whole cache lines");
static_assert(alignof(EventBundle) == 64,
              "bundles must start on a cache-line boundary");

/// An append-only chain of bundles backing one (src, dst) mailbox. The
/// backing vector is the arena: drain() resets the cursor but keeps every
/// bundle allocated, so windows after the high-water mark recycle bundles
/// instead of allocating.
class BundleChain {
 public:
  /// Writer side: append one record, opening a (recycled) bundle when the
  /// tail bundle is full.
  void append(const EventRecord& record) {
    if (used_ == 0 || bundles_[used_ - 1].full()) {
      if (used_ == bundles_.size()) {
        bundles_.emplace_back();
      } else {
        bundles_[used_].count = 0;
      }
      ++used_;
    }
    EventBundle& bundle = bundles_[used_ - 1];
    bundle.records[bundle.count++] = record;
    ++records_;
  }

  [[nodiscard]] bool empty() const { return records_ == 0; }
  /// Records appended since the last drain.
  [[nodiscard]] std::size_t pending_records() const { return records_; }
  /// Sealed bundles the next drain will hand over.
  [[nodiscard]] std::size_t pending_bundles() const { return used_; }
  /// Arena high-water mark (bundles ever allocated; never shrinks).
  [[nodiscard]] std::size_t capacity_bundles() const {
    return bundles_.size();
  }

  /// Reader side: visit every pending record in append order,
  /// bundle-at-a-time with the next bundle prefetched, then reset the
  /// chain (keeping the arena). Returns the number of records drained.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    const std::size_t drained = records_;
    for (std::size_t i = 0; i < used_; ++i) {
      if (i + 1 < used_) LINA_DES_PREFETCH(&bundles_[i + 1]);
      const EventBundle& bundle = bundles_[i];
      for (std::uint32_t j = 0; j < bundle.count; ++j) fn(bundle.records[j]);
    }
    used_ = 0;
    records_ = 0;
    return drained;
  }

 private:
  std::vector<EventBundle> bundles_;
  std::size_t used_ = 0;     // bundles holding pending records
  std::size_t records_ = 0;  // pending records across used bundles
};

}  // namespace lina::des
