#pragma once

// Sharded conservative-time parallel discrete-event engine (DESIGN.md
// §4i).
//
// The event queue is split per AS region: every AS maps to a shard via a
// deterministic topology-derived mapping (nearest metro anchor, folded
// onto the shard count), so intra-metro forwarding stays shard-local and
// cross-shard traffic rides inter-metro links whose delay is the
// lookahead. Shards run on the lina::exec pool under time-sliced windows:
// within [window_start, horizon) each shard drains its own flat binary
// heap serially; cross-shard records land in per-(src,dst) single-writer
// mailboxes that are drained at the window barrier. A handoff that lands
// *inside* the still-open window (possible only when the lookahead is
// zero, e.g. a zero-delay link) triggers another intra-window pass — the
// re-drain fixpoint — so every event still executes at its exact
// timestamp before the window advances.

#include <cstdint>
#include <vector>

#include "lina/des/event.hpp"
#include "lina/des/model.hpp"
#include "lina/routing/synthetic_internet.hpp"

namespace lina::des {

/// Deterministic AS -> shard mapping derived from the topology: each AS
/// joins the shard of its nearest metro anchor (anchor index modulo the
/// shard count), so a region's routers co-reside and the mapping is a
/// pure function of the AS graph — identical across runs, thread counts,
/// and processes.
class ShardMap {
 public:
  static ShardMap from_topology(const routing::SyntheticInternet& internet,
                                std::size_t shard_count);

  [[nodiscard]] std::uint32_t shard_of(topology::AsId as) const {
    return shard_of_as_[as];
  }
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

 private:
  std::vector<std::uint32_t> shard_of_as_;
  std::size_t shard_count_ = 1;
};

struct EngineConfig {
  std::size_t shard_count = 16;
  /// Lookahead window width; 0 = auto (the minimum cross-shard link
  /// delay — the conservative safe horizon). When the topology admits
  /// zero-delay cross-shard hops the auto window falls back to a small
  /// positive slice and correctness is carried by the re-drain fixpoint.
  double window_ms = 0.0;
  /// lina::exec worker bound for the per-window shard fan-out (0 =
  /// exec::default_threads()).
  std::size_t threads = 0;
};

/// What a run did. The digest is the bit-identity surface; the window /
/// handoff counters describe the engine's behaviour and vary with the
/// shard count (never with the thread count).
struct RunStats {
  DeliveryDigest digest;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t redrain_passes = 0;
  std::uint64_t handoffs = 0;
  double lookahead_ms = 0.0;
};

class ShardedEngine {
 public:
  /// The model and map must outlive the engine. Throws
  /// std::invalid_argument if the config window is negative or NaN.
  ShardedEngine(const PacketModel& model, const ShardMap& map,
                EngineConfig config = {});

  /// Seeds every session's initial event and runs the window loop to
  /// completion; returns the combined digest and engine counters.
  RunStats run();

  /// The resolved lookahead (config window, or the auto-derived one).
  [[nodiscard]] double lookahead_ms() const { return lookahead_ms_; }

 private:
  /// Flat arena binary heap of event records ordered by (time, seq);
  /// seq is assigned on push, so equal-time local events pop FIFO.
  struct ShardQueue {
    std::vector<EventRecord> heap;
    std::uint64_t next_seq = 0;
    DeliveryDigest digest;
    std::uint64_t executed = 0;

    void push(EventRecord record);
    [[nodiscard]] bool empty() const { return heap.empty(); }
    [[nodiscard]] double top_time() const { return heap.front().time_ms; }
    EventRecord pop();
  };

  [[nodiscard]] std::uint32_t owner_shard(const EventRecord& record) const;
  [[nodiscard]] double auto_window_ms() const;

  const PacketModel* model_;
  const ShardMap* map_;
  EngineConfig config_;
  double lookahead_ms_ = 0.0;
  std::vector<ShardQueue> shards_;
  /// mailboxes_[src * S + dst]: written only by the worker running shard
  /// `src` during a window pass, drained only by the worker running shard
  /// `dst` at the barrier — single writer, single reader, no locks.
  std::vector<std::vector<EventRecord>> mailboxes_;
};

/// The serial reference: the same PacketModel driven through
/// sim::EventQueue (one global priority queue of std::function entries),
/// executing every event in global (time, FIFO) order. The sharded
/// engine's digest must equal this one bit-for-bit.
RunStats run_serial(const PacketModel& model);

}  // namespace lina::des
