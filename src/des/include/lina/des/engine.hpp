#pragma once

// Sharded parallel discrete-event engine, two sync modes (DESIGN.md
// §4i/§4j).
//
// The event queue is split per AS region: every AS maps to a shard via a
// deterministic topology-derived mapping (nearest metro anchor, folded
// onto the shard count), so intra-metro forwarding stays shard-local and
// cross-shard traffic rides inter-metro links whose delay is the
// lookahead. Cross-shard records travel in cache-line-aligned bundles
// (lina/des/bundle.hpp) through per-(src,dst) single-writer mailboxes,
// sealed at window barriers and drained bundle-at-a-time with prefetch.
//
// Conservative mode (PR 9): shards drain their own flat binary heap
// serially within [window_start, horizon); a handoff that lands *inside*
// the still-open window (possible only at zero lookahead) triggers the
// re-drain fixpoint, so every event executes at its exact timestamp
// before the window advances.
//
// Optimistic mode: shards execute speculatively past the horizon, keeping
// an undo log of processed records; cross-shard emissions are staged and
// released only once GVT (computed at the existing pool barriers) passes
// their emitting event, so rollback is purely shard-local. A straggler
// arrival below a shard's speculative clock rewinds the undo log past the
// straggler timestamp and replays (lina/des/optimistic.hpp).
//
// Both modes produce the bit-identical DeliveryDigest as the serial
// sim::EventQueue reference — asserted by tests/des across all four
// architectures × shards {1,4,16} × threads {1,8}, ± FailurePlan.

#include <cstdint>
#include <span>
#include <vector>

#include "lina/des/bundle.hpp"
#include "lina/des/event.hpp"
#include "lina/des/model.hpp"
#include "lina/des/optimistic.hpp"
#include "lina/routing/synthetic_internet.hpp"
#include "lina/topology/geo.hpp"

namespace lina::des {

/// Deterministic AS -> shard mapping derived from the topology: each AS
/// joins the shard of its nearest metro anchor (anchor index modulo the
/// shard count), so a region's routers co-reside and the mapping is a
/// pure function of the AS graph — identical across runs, thread counts,
/// and processes.
class ShardMap {
 public:
  static ShardMap from_topology(const routing::SyntheticInternet& internet,
                                std::size_t shard_count);

  /// Index of the anchor nearest to `at` by great-circle distance.
  /// Tie-break rule (load-bearing for cross-platform shard stability,
  /// pinned by tests/des): the comparison is a strict less-than, so among
  /// equidistant anchors the LOWEST anchor index wins — a later anchor
  /// must be strictly closer to displace an earlier one.
  [[nodiscard]] static std::size_t nearest_anchor(
      const topology::GeoPoint& at,
      std::span<const topology::GeoPoint> anchors);

  [[nodiscard]] std::uint32_t shard_of(topology::AsId as) const {
    return shard_of_as_[as];
  }
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

 private:
  std::vector<std::uint32_t> shard_of_as_;
  std::size_t shard_count_ = 1;
};

/// How shards agree on time (DESIGN.md §4j).
enum class SyncMode : std::uint8_t {
  /// Never execute past the safe horizon; zero-lookahead fabrics fall
  /// back to fixed slices plus the re-drain fixpoint.
  kConservative,
  /// Execute speculatively past the horizon with undo-log rollback;
  /// cross-shard sends are held until GVT commits their emitter.
  kOptimistic,
};

struct EngineConfig {
  std::size_t shard_count = 16;
  /// Lookahead window width; 0 = auto (the minimum cross-shard link
  /// delay — the conservative safe horizon). When the topology admits
  /// zero-delay cross-shard hops the auto window falls back to a small
  /// positive slice and correctness is carried by the re-drain fixpoint
  /// (conservative) or rollback (optimistic).
  double window_ms = 0.0;
  /// lina::exec worker bound for the per-window shard fan-out (0 =
  /// exec::default_threads()).
  std::size_t threads = 0;
  /// Conservative barriers-every-window, or optimistic speculate-and-
  /// rollback. The digest is identical either way; only the barrier /
  /// rollback counters and the wall clock differ.
  SyncMode sync = SyncMode::kConservative;
  /// Optimistic only: how many lookahead windows past GVT a shard may
  /// speculate per pass. Larger values amortize more barriers but risk
  /// deeper rollbacks on low-delay cross-shard traffic.
  double speculation_windows = 4.0;
};

/// What a run did. The digest is the bit-identity surface; the window /
/// handoff / rollback counters describe the engine's behaviour and vary
/// with the shard count and sync mode (never with the thread count).
struct RunStats {
  DeliveryDigest digest;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t redrain_passes = 0;  // conservative zero-lookahead fixpoint
  std::uint64_t handoffs = 0;        // records through cross-shard mailboxes
  std::uint64_t bundles = 0;         // sealed bundles drained at barriers
  std::uint64_t rollbacks = 0;       // optimistic: straggler rollbacks
  std::uint64_t rolled_back_events = 0;  // optimistic: events undone+replayed
  double lookahead_ms = 0.0;
  /// Net events executed per shard (load-balance observability; sums to
  /// `events`).
  std::vector<std::uint64_t> shard_events;
  /// max(shard_events) / mean(shard_events): 1.0 = perfectly balanced,
  /// S = everything on one shard. 0 when no events ran.
  double shard_imbalance = 0.0;
};

class ShardedEngine {
 public:
  /// The model and map must outlive the engine. Throws
  /// std::invalid_argument if the config window is negative or NaN, or
  /// the speculation depth is not a positive finite number.
  ShardedEngine(const PacketModel& model, const ShardMap& map,
                EngineConfig config = {});

  /// Seeds every session's initial event and runs the configured sync
  /// mode to completion; returns the combined digest and engine counters.
  RunStats run();

  /// The resolved lookahead (config window, or the auto-derived one).
  [[nodiscard]] double lookahead_ms() const { return lookahead_ms_; }

 private:
  /// Flat arena binary heap of event records ordered by (time, seq);
  /// seq is assigned on push, so equal-time local events pop FIFO.
  struct ShardQueue {
    std::vector<EventRecord> heap;
    std::uint64_t next_seq = 0;
    DeliveryDigest digest;
    std::uint64_t executed = 0;

    void push(EventRecord record);
    /// Append without restoring the heap property (rollback batches
    /// re-pushes and removals, then calls restore_heap() once).
    void append_raw(EventRecord record);
    void restore_heap();
    /// Remove one record matching `r` up to the seq tie-break (swap-pop;
    /// leaves the heap property broken — pair with restore_heap()).
    bool remove_match(const EventRecord& r);
    [[nodiscard]] bool empty() const { return heap.empty(); }
    [[nodiscard]] double top_time() const { return heap.front().time_ms; }
    EventRecord pop();
  };

  RunStats run_conservative();
  RunStats run_optimistic();  // src/optimistic.cpp

  /// Seeds initial events and returns the earliest seeded time.
  void seed_sessions();
  [[nodiscard]] double global_min_time() const;
  /// Undo every log entry newer than `straggler_ms` on shard `s`
  /// (subtract recomputed digest deltas, retract recomputed emissions
  /// from the heap and staging, re-push the records) and restore the
  /// heap. Returns the number of events undone.
  std::uint64_t rollback(std::size_t s, double straggler_ms);
  /// Fold per-shard digests/counters into `stats` and export lina.des.*
  /// metrics.
  void finish_stats(RunStats& stats) const;

  [[nodiscard]] std::uint32_t owner_shard(const EventRecord& record) const;
  [[nodiscard]] double auto_window_ms() const;

  const PacketModel* model_;
  const ShardMap* map_;
  EngineConfig config_;
  double lookahead_ms_ = 0.0;
  std::vector<ShardQueue> shards_;
  /// mailboxes_[src * S + dst]: bundled chain written only by the worker
  /// running shard `src` during a window pass (conservative) or the
  /// release step (optimistic), drained only by the worker running shard
  /// `dst` at the barrier — single writer, single reader, no locks.
  std::vector<BundleChain> mailboxes_;
  /// Optimistic only: per-(src,dst) speculative output staging and the
  /// per-shard undo logs / speculative clocks.
  std::vector<std::vector<StagedRecord>> staged_;
  std::vector<UndoLog> logs_;
  std::vector<double> clock_;
  /// Per-shard behaviour counters (filled by whichever mode ran).
  std::vector<std::uint64_t> received_;
  std::vector<std::uint64_t> bundles_;
  std::vector<std::uint64_t> rollbacks_;
  std::vector<std::uint64_t> rolled_back_;
};

/// The serial reference: the same PacketModel driven through
/// sim::EventQueue (one global priority queue of std::function entries),
/// executing every event in global (time, FIFO) order. Both sharded sync
/// modes' digests must equal this one bit-for-bit.
RunStats run_serial(const PacketModel& model);

}  // namespace lina::des
