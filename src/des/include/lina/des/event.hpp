#pragma once

#include <cstdint>

namespace lina::des {

/// What a flat event record means to the packet model.
///
/// The engine replaces sim::EventQueue's type-erased std::function entries
/// with these fixed-size POD records: the hot loop moves 48-byte values
/// through vector-backed binary heaps and mailboxes, never allocating and
/// never chasing a closure pointer.
enum class EventType : std::uint8_t {
  kEmit,  // the correspondent emits packet `packet` (and re-arms itself)
  kHop,   // packet `packet` is at AS `at`, forwarding toward `dest`
};

/// The forwarding stage of a kHop record.
enum class HopStage : std::uint8_t {
  kRelay,  // heading for the indirection relay (home agent)
  kFinal,  // heading for the believed mobile location
};

/// One scheduled event. POD by design: records are copied into per-shard
/// arenas and cross-shard mailboxes by value.
struct EventRecord {
  double time_ms = 0.0;    // absolute simulated time
  double sent_ms = 0.0;    // kHop: when the packet left the correspondent
  std::uint64_t seq = 0;   // per-queue FIFO tie-break (assigned on push)
  std::uint32_t session = 0;  // index into the model's session arena
  std::uint32_t packet = 0;   // packet sequence number within the session
  std::uint32_t at = 0;       // current AS (kEmit: the correspondent)
  std::uint32_t dest = 0;     // AS the packet is currently addressed to
  std::uint16_t hops = 0;     // forwarding hops taken so far
  EventType type = EventType::kEmit;
  HopStage stage = HopStage::kFinal;
};

static_assert(sizeof(EventRecord) <= 48, "event records must stay flat");

/// Identity of two records up to the engine-assigned FIFO tie-break.
/// Rollback retraction matches a re-generated emission against the copy
/// sitting in a heap or staging area; `seq` is assigned per queue on push
/// and is the one field a pure re-execution cannot reproduce.
[[nodiscard]] constexpr bool same_event(const EventRecord& a,
                                        const EventRecord& b) {
  return a.time_ms == b.time_ms && a.sent_ms == b.sent_ms &&
         a.session == b.session && a.packet == b.packet && a.at == b.at &&
         a.dest == b.dest && a.hops == b.hops && a.type == b.type &&
         a.stage == b.stage;
}

namespace detail {

/// splitmix64 finalizer: the per-packet hash the digest folds over.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Order-independent summary of every delivered packet: a commutative
/// fold (XOR and wrapping sum of per-packet hashes), so any execution
/// order of the same delivered-packet multiset produces the same digest —
/// the property that lets the sharded engine be compared bit-for-bit
/// against the serial sim::EventQueue loop at any shard or thread count.
/// Delay is accumulated in integer microseconds (exact, associative); a
/// floating-point sum would depend on accumulation order.
struct DeliveryDigest {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t hop_events = 0;
  std::uint64_t xor_mix = 0;
  std::uint64_t sum_mix = 0;
  std::uint64_t delay_us_total = 0;
  std::uint64_t hops_total = 0;

  /// `session_id` is the *global* session identity (not a batch-local
  /// index), so out-of-core replay produces the same digest at any batch
  /// size.
  void add_delivered(std::uint64_t session_id, std::uint32_t packet,
                     double time_ms, double sent_ms, std::uint16_t hops,
                     std::uint32_t dest_as) {
    ++delivered;
    hops_total += hops;
    const double delay_ms = time_ms - sent_ms;
    delay_us_total += static_cast<std::uint64_t>(delay_ms * 1000.0 + 0.5);
    std::uint64_t h = detail::mix64(session_id);
    h = detail::mix64(h ^ packet);
    h = detail::mix64(h ^ static_cast<std::uint64_t>(hops));
    h = detail::mix64(h ^ static_cast<std::uint64_t>(dest_as));
    h = detail::mix64(
        h ^ static_cast<std::uint64_t>(delay_ms * 1024.0 + 0.5));
    xor_mix ^= h;
    sum_mix += h;
  }

  /// Exact inverse of combine(): XOR is an involution and the counters /
  /// sums use wrapping unsigned arithmetic, so subtracting the digest
  /// delta a rolled-back event contributed restores the pre-event digest
  /// bit-for-bit. This is what makes the optimistic engine's undo log a
  /// plain record list: rollback re-runs the pure handler into a scratch
  /// digest and subtracts it, no stored state needed.
  void subtract(const DeliveryDigest& other) {
    sent -= other.sent;
    delivered -= other.delivered;
    lost -= other.lost;
    hop_events -= other.hop_events;
    xor_mix ^= other.xor_mix;
    sum_mix -= other.sum_mix;
    delay_us_total -= other.delay_us_total;
    hops_total -= other.hops_total;
  }

  /// Commutative merge of another shard's digest.
  void combine(const DeliveryDigest& other) {
    sent += other.sent;
    delivered += other.delivered;
    lost += other.lost;
    hop_events += other.hop_events;
    xor_mix ^= other.xor_mix;
    sum_mix += other.sum_mix;
    delay_us_total += other.delay_us_total;
    hops_total += other.hops_total;
  }

  /// One number summarizing the whole digest (for bench result blocks).
  [[nodiscard]] std::uint64_t fingerprint() const {
    std::uint64_t h = detail::mix64(sent ^ detail::mix64(delivered));
    h = detail::mix64(h ^ lost);
    h = detail::mix64(h ^ xor_mix);
    h = detail::mix64(h ^ sum_mix);
    h = detail::mix64(h ^ delay_us_total);
    h = detail::mix64(h ^ hops_total);
    return h;
  }

  [[nodiscard]] double mean_delay_ms() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(delay_us_total) /
                                (1000.0 * static_cast<double>(delivered));
  }

  friend bool operator==(const DeliveryDigest&,
                         const DeliveryDigest&) = default;
};

}  // namespace lina::des
