#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lina/obs/json.hpp"
#include "lina/obs/registry.hpp"
#include "lina/obs/trace.hpp"

namespace lina::obs {

/// Identity and context of one instrumented run — everything a later
/// analysis needs to interpret the metric values: which binary, which
/// seed, which knobs, and how wall time split across phases. This is the
/// `BENCH_*.json` perf-trajectory record every bench binary emits via the
/// shared `--json` flag.
struct RunInfo {
  std::string name;        // bench/experiment identifier
  std::uint64_t seed = 0;  // dominant RNG seed (0 = unseeded/deterministic)
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::pair<std::string, double>> phases;   // (phase, wall ms)
  std::vector<std::pair<std::string, double>> results;  // headline scalars
};

/// The registry snapshot as a JSON object:
///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// Histograms carry count/sum/min/max/mean, p50/p90/p99, and the raw
/// bucket vector so downstream tooling can re-derive any quantile.
[[nodiscard]] Json snapshot_to_json(const Snapshot& snapshot);

/// Inverse of snapshot_to_json; throws std::runtime_error on documents
/// that do not conform. `parse_snapshot(Json::parse(export_json(...)))`
/// is the schema self-check: if the emitted file does not load back, the
/// export is malformed.
[[nodiscard]] Snapshot parse_snapshot(const Json& document);

/// The full machine-readable run record (schema_version, run info, and
/// the metrics snapshot), pretty-printed.
[[nodiscard]] std::string export_json(const RunInfo& info,
                                      const Snapshot& snapshot);

/// Flat CSV: metric,kind,field,value — one row per scalar, plus
/// count/sum/min/max/mean/p50/p90/p99 rows per histogram.
[[nodiscard]] std::string export_csv(const Snapshot& snapshot);

/// Trace events as JSON lines (one event object per line).
[[nodiscard]] std::string export_trace_jsonl(
    const std::vector<TraceEvent>& events);

/// Writes `content` to `path`; throws std::runtime_error when the file
/// cannot be opened or written.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace lina::obs
