#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lina::obs {

/// Process-wide metrics registry — the `lina::obs` observability core.
///
/// Metrics are named following the scheme
/// `lina.<layer>.<component>.<metric>` (e.g.
/// `lina.sim.fabric.detour_hops`) and come in three shapes:
///
///  - Counter   — monotonic, thread-safe (relaxed atomic adds),
///  - Gauge     — last-value / running-max, thread-safe,
///  - Histogram — fixed exponential buckets with quantile extraction.
///
/// The registry is **disabled by default** and every recording operation
/// is a cheap no-op while it stays disabled: one relaxed atomic-bool load
/// and a predictable branch. Instrumented code therefore costs nothing
/// measurable in the hot loops, and — by construction — instrumentation
/// only ever *observes*; it never feeds back into simulation state.
/// `tests/obs/off_switch_test.cpp` pins that contract by asserting
/// bit-identical `SessionStats` with the registry on vs. off, mirroring
/// the PR 1 empty-FailurePlan discipline.
///
/// Handles (`Counter`, `Gauge`, `Histogram`) are small value types
/// pointing at registry-owned cells; cells live for the process lifetime,
/// so handles never dangle. Registration deduplicates by name: asking for
/// the same metric name twice returns a handle to the same cell.

namespace detail {

/// The global off-switch, shared by every handle.
[[nodiscard]] std::atomic<bool>& enabled_flag() noexcept;

inline bool recording() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  std::atomic<double> value{0.0};
  std::atomic<double> max{0.0};
  std::atomic<bool> touched{false};
};

/// Exponential bucket layout: bucket i covers
/// [first_bound * growth^(i-1), first_bound * growth^i), bucket 0 is the
/// underflow bucket (< first_bound) and the last bucket is the overflow
/// bucket (>= the largest bound).
struct HistogramLayout {
  double first_bound = 0.001;  // 1 µs when recording milliseconds
  double growth = 2.0;
  std::size_t bucket_count = 40;  // including underflow + overflow
};

struct HistogramCell {
  explicit HistogramCell(const HistogramLayout& layout);

  HistogramLayout layout;
  std::vector<double> upper_bounds;  // size bucket_count - 1
  std::vector<std::atomic<std::uint64_t>> buckets;
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};

  void record(double x) noexcept;
};

}  // namespace detail

/// Monotonic counter handle. `add` is a no-op while the registry is
/// disabled.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) noexcept {
    if (cell_ != nullptr && detail::recording())
      cell_->value.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0
                            : cell_->value.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Last-value gauge with a running maximum; `set` / `record_max` are
/// no-ops while disabled.
class Gauge {
 public:
  Gauge() = default;

  void set(double v) noexcept {
    if (cell_ == nullptr || !detail::recording()) return;
    cell_->value.store(v, std::memory_order_relaxed);
    record_max(v);
    cell_->touched.store(true, std::memory_order_relaxed);
  }

  /// Raises the running maximum to at least `v`.
  void record_max(double v) noexcept {
    if (cell_ == nullptr || !detail::recording()) return;
    double current = cell_->max.load(std::memory_order_relaxed);
    while (v > current && !cell_->max.compare_exchange_weak(
                              current, v, std::memory_order_relaxed)) {
    }
    cell_->touched.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const noexcept {
    return cell_ == nullptr ? 0.0
                            : cell_->value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept {
    return cell_ == nullptr ? 0.0
                            : cell_->max.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket latency/size histogram handle; `record` is a no-op while
/// disabled.
class Histogram {
 public:
  Histogram() = default;

  void record(double x) noexcept {
    if (cell_ != nullptr && detail::recording()) cell_->record(x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return cell_ == nullptr ? 0
                            : cell_->count.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  friend class ScopedTimer;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// Point-in-time copy of one histogram, with quantile extraction.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// (upper bound, cumulative-exclusive count) per bucket; the last
  /// bucket's bound is +infinity (the overflow bucket).
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> buckets;

  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// q-th quantile, q in [0, 1], by linear interpolation inside the
  /// containing bucket, clamped to the observed [min, max] so single
  /// samples and overflow-bucket mass report honest values. Empty
  /// histograms report 0.
  [[nodiscard]] double quantile(double q) const;
};

/// Point-in-time copy of the whole registry, sorted by metric name.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// name -> (value, max)
  std::vector<std::pair<std::string, std::pair<double, double>>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

struct HistogramOptions {
  double first_bound = 0.001;
  double growth = 2.0;
  std::size_t bucket_count = 40;
};

class Registry {
 public:
  /// The process-wide registry.
  [[nodiscard]] static Registry& instance();

  /// Turns recording on/off globally. Off (the default) makes every
  /// handle operation a no-op.
  void enable(bool on) noexcept {
    detail::enabled_flag().store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept { return detail::recording(); }

  /// Returns a handle to the named metric, registering it on first use.
  /// Thread-safe; repeated calls with the same name share one cell.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    HistogramOptions options = {});

  /// Zeroes every registered metric (registrations and handles survive).
  void reset();

  /// Copies every metric that has recorded at least one event (untouched
  /// metrics are omitted so exports only carry what actually ran).
  [[nodiscard]] Snapshot snapshot() const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;
  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

/// Enables the registry for the lifetime of the object, restoring the
/// previous state on destruction — the bench harness and tests use this
/// so one binary can compare instrumented and bare runs.
class EnabledScope {
 public:
  explicit EnabledScope(bool on = true)
      : previous_(Registry::instance().enabled()) {
    Registry::instance().enable(on);
  }
  ~EnabledScope() { Registry::instance().enable(previous_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool previous_;
};

}  // namespace lina::obs
