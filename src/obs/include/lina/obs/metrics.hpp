#pragma once

#include "lina/obs/registry.hpp"

namespace lina::obs::metric {

/// Cached handles for the well-known instrumentation points threaded
/// through the hot layers. Each accessor registers on first use and then
/// returns the same handle forever, so call sites pay one static-guard
/// check plus the disabled-branch — no registry lookup — per event.
///
/// Naming scheme: `lina.<layer>.<component>.<metric>` (see DESIGN.md
/// §4b). Counters are monotonic event counts; `*_ms` histograms record
/// milliseconds.

#define LINA_OBS_COUNTER(fn, name)                         \
  inline Counter& fn() {                                   \
    static Counter handle = Registry::instance().counter(name); \
    return handle;                                         \
  }

#define LINA_OBS_GAUGE(fn, name)                           \
  inline Gauge& fn() {                                     \
    static Gauge handle = Registry::instance().gauge(name); \
    return handle;                                         \
  }

#define LINA_OBS_HISTOGRAM(fn, name)                       \
  inline Histogram& fn() {                                 \
    static Histogram handle = Registry::instance().histogram(name); \
    return handle;                                         \
  }

// Routing tries (the FIB data structures).
LINA_OBS_COUNTER(ip_trie_lpm_lookups, "lina.net.ip_trie.lpm_lookups")
LINA_OBS_COUNTER(ip_trie_lpm_node_visits, "lina.net.ip_trie.lpm_node_visits")
LINA_OBS_COUNTER(ip_trie_inserts, "lina.net.ip_trie.inserts")
LINA_OBS_COUNTER(ip_trie_displacements, "lina.net.ip_trie.displacements")
LINA_OBS_COUNTER(ip_trie_erases, "lina.net.ip_trie.erases")
LINA_OBS_COUNTER(name_trie_lpm_lookups, "lina.names.name_trie.lpm_lookups")
LINA_OBS_COUNTER(name_trie_lpm_node_visits,
                 "lina.names.name_trie.lpm_node_visits")
LINA_OBS_COUNTER(name_trie_inserts, "lina.names.name_trie.inserts")
LINA_OBS_COUNTER(name_trie_displacements,
                 "lina.names.name_trie.displacements")
LINA_OBS_COUNTER(name_trie_erases, "lina.names.name_trie.erases")

// FIB storage footprint (arena capacities and the shared component
// interner), refreshed whenever a table is frozen or a bench samples it.
LINA_OBS_GAUGE(fib_arena_bytes, "lina.fib.arena_bytes")
LINA_OBS_GAUGE(name_fib_arena_bytes, "lina.fib.name_arena_bytes")
LINA_OBS_GAUGE(name_interner_entries, "lina.names.interner.entries")
LINA_OBS_GAUGE(name_interner_bytes, "lina.names.interner.bytes")

// Forwarding fabric (per-hop forwarding and failure reroutes).
LINA_OBS_COUNTER(fabric_next_hop_queries, "lina.sim.fabric.next_hop_queries")
LINA_OBS_COUNTER(fabric_detour_hops, "lina.sim.fabric.detour_hops")
LINA_OBS_COUNTER(fabric_detour_route_builds,
                 "lina.sim.fabric.detour_route_builds")
LINA_OBS_COUNTER(fabric_degraded_graph_builds,
                 "lina.sim.fabric.degraded_graph_builds")
LINA_OBS_COUNTER(fabric_impaired_path_checks,
                 "lina.sim.fabric.impaired_path_checks")

// Resolver pool (lookup / failover / update fan-out).
LINA_OBS_COUNTER(resolver_lookups, "lina.sim.resolver.lookups")
LINA_OBS_COUNTER(resolver_failover_lookups,
                 "lina.sim.resolver.failover_lookups")
LINA_OBS_COUNTER(resolver_updates, "lina.sim.resolver.updates")
LINA_OBS_HISTOGRAM(resolver_lookup_delay_ms,
                   "lina.sim.resolver.lookup_delay_ms")

// Discrete-event queue (depth and dwell time).
LINA_OBS_COUNTER(event_queue_scheduled, "lina.sim.event_queue.scheduled")
LINA_OBS_COUNTER(event_queue_executed, "lina.sim.event_queue.executed")
LINA_OBS_GAUGE(event_queue_depth, "lina.sim.event_queue.depth")
LINA_OBS_HISTOGRAM(event_queue_dwell_ms, "lina.sim.event_queue.dwell_ms")

// Sharded parallel discrete-event engine (lina::des): per-run totals of
// events executed across shards, window barriers, cross-shard mailbox
// handoffs, and intra-window re-drain passes (zero-lookahead fixpoint).
LINA_OBS_COUNTER(des_events_executed, "lina.des.events_executed")
LINA_OBS_COUNTER(des_windows, "lina.des.windows")
LINA_OBS_COUNTER(des_handoffs, "lina.des.handoffs")
LINA_OBS_COUNTER(des_redrain_passes, "lina.des.redrain_passes")
LINA_OBS_GAUGE(des_shards, "lina.des.shards")
LINA_OBS_GAUGE(des_lookahead_ms, "lina.des.lookahead_ms")
// Load balance and sync-mode behaviour: per-shard event counts (one
// histogram sample per shard per run), the max/mean skew of that
// distribution, sealed cross-shard bundles, and the optimistic mode's
// straggler rollbacks / gross undone-event count.
LINA_OBS_HISTOGRAM(des_shard_events, "lina.des.shard_events")
LINA_OBS_GAUGE(des_shard_imbalance, "lina.des.shard_imbalance")
LINA_OBS_COUNTER(des_bundles_sealed, "lina.des.bundles_sealed")
LINA_OBS_COUNTER(des_rollbacks, "lina.des.rollbacks")
LINA_OBS_COUNTER(des_rolled_back_events, "lina.des.rolled_back_events")

// Failure plan (fault activations and injected control-message drops).
LINA_OBS_COUNTER(failure_plan_events, "lina.sim.failure.plan_events")
LINA_OBS_COUNTER(failure_control_drops, "lina.sim.failure.control_drops")
LINA_OBS_COUNTER(failure_active_sends, "lina.sim.failure.active_sends")

// Session simulators (mirrors of SessionStats, per process).
LINA_OBS_COUNTER(session_runs, "lina.sim.session.runs")
LINA_OBS_COUNTER(session_packets_sent, "lina.sim.session.packets_sent")
LINA_OBS_COUNTER(session_packets_delivered,
                 "lina.sim.session.packets_delivered")
LINA_OBS_COUNTER(session_packets_lost, "lina.sim.session.packets_lost")
LINA_OBS_COUNTER(session_control_messages,
                 "lina.sim.session.control_messages")
LINA_OBS_COUNTER(session_control_retries,
                 "lina.sim.session.control_retries")
LINA_OBS_HISTOGRAM(session_run_wall_ms, "lina.sim.session.run_wall_ms")

// Mapping caches on the resolution hot paths (lina::cache). Counters are
// process-wide aggregates over every cache instance; per-instance counts
// live in cache::CacheStats.
LINA_OBS_COUNTER(cache_probes, "lina.cache.probes")
LINA_OBS_COUNTER(cache_hits, "lina.cache.hits")
LINA_OBS_COUNTER(cache_misses, "lina.cache.misses")
LINA_OBS_COUNTER(cache_insertions, "lina.cache.insertions")
LINA_OBS_COUNTER(cache_evictions, "lina.cache.evictions")
LINA_OBS_COUNTER(cache_invalidations, "lina.cache.invalidations")
LINA_OBS_COUNTER(cache_refreshes, "lina.cache.refreshes")
LINA_OBS_COUNTER(cache_ttl_expiries, "lina.cache.ttl_expiries")
LINA_OBS_GAUGE(cache_entries, "lina.cache.entries")
LINA_OBS_GAUGE(cache_arena_bytes, "lina.cache.arena_bytes")

// Trace store (sharded binary workload traces and streaming replay).
LINA_OBS_COUNTER(trace_shards_written, "lina.trace.shards_written")
LINA_OBS_COUNTER(trace_bytes_written, "lina.trace.bytes_written")
LINA_OBS_COUNTER(trace_visits_written, "lina.trace.visits_written")
LINA_OBS_COUNTER(trace_events_written, "lina.trace.events_written")
LINA_OBS_COUNTER(trace_shards_read, "lina.trace.shards_read")
LINA_OBS_COUNTER(trace_bytes_read, "lina.trace.bytes_read")
LINA_OBS_COUNTER(trace_visits_read, "lina.trace.visits_read")
LINA_OBS_COUNTER(trace_cursor_events, "lina.trace.cursor_events")
LINA_OBS_GAUGE(trace_merge_heap_depth, "lina.trace.merge_heap_depth")

// Snapshot store (durable FIB snapshots and warm-start recovery).
LINA_OBS_COUNTER(snap_saves, "lina.snap.saves")
LINA_OBS_COUNTER(snap_bytes_written, "lina.snap.bytes_written")
LINA_OBS_COUNTER(snap_loads, "lina.snap.loads")
LINA_OBS_COUNTER(snap_load_failures, "lina.snap.load_failures")
LINA_OBS_COUNTER(snap_fallback_rebuilds, "lina.snap.fallback_rebuilds")
LINA_OBS_GAUGE(snap_snapshot_bytes, "lina.snap.snapshot_bytes")
LINA_OBS_HISTOGRAM(snap_save_ms, "lina.snap.save_ms")
LINA_OBS_HISTOGRAM(snap_load_ms, "lina.snap.load_ms")

// Bench harness fixtures.
LINA_OBS_HISTOGRAM(fixture_build_ms, "lina.bench.fixture.build_ms")

// Instrumentation self-accounting: ring occupancy and truncation for the
// obs trace ring and the prof span rings, set at export time so every
// BENCH_*.json records whether its trace/profile was truncated.
LINA_OBS_GAUGE(trace_ring_events, "lina.obs.trace_ring.events")
LINA_OBS_GAUGE(trace_ring_dropped, "lina.obs.trace_ring.dropped")
LINA_OBS_GAUGE(prof_spans_recorded, "lina.prof.spans_recorded")
LINA_OBS_GAUGE(prof_spans_dropped, "lina.prof.spans_dropped")
LINA_OBS_GAUGE(prof_threads, "lina.prof.threads")

#undef LINA_OBS_COUNTER
#undef LINA_OBS_GAUGE
#undef LINA_OBS_HISTOGRAM

}  // namespace lina::obs::metric
