#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace lina::obs {

/// One trace event: a named point sample on the simulated (or wall)
/// timeline, e.g. a failover, a reroute, a phase boundary.
struct TraceEvent {
  double time_ms = 0.0;
  std::string name;   // lina.<layer>.<component>.<event>
  double value = 0.0;  // event-specific payload (count, delay, AS id, ...)
};

/// A lightweight bounded event-trace ring buffer. Recording is a no-op
/// while the metrics registry is disabled (same global off-switch), so
/// tracing hooks can live permanently in the hot layers. When the ring
/// wraps, the oldest events are overwritten; `dropped()` reports how many
/// were lost so exports never silently truncate.
///
/// Thread-safe (mutex-protected); the tracer is for sparse control-plane
/// events, not per-packet firehoses.
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  [[nodiscard]] static TraceRing& instance();

  /// Records an event iff the registry is enabled.
  void record(std::string_view name, double time_ms, double value = 0.0);

  /// Events in arrival order (oldest surviving first).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Discards all buffered events and the dropped count.
  void clear();

  /// Resizes (and clears) the ring.
  void set_capacity(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

 private:
  TraceRing() = default;
  struct Impl;
  [[nodiscard]] Impl& impl() const;
  std::size_t capacity_ = kDefaultCapacity;
};

}  // namespace lina::obs
