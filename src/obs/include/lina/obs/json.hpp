#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lina::obs {

/// A minimal JSON document model — just enough for the exporters to emit
/// structured bench/sim telemetry and to parse their own output back (the
/// round-trip self-check that replaces an external schema validator).
/// Numbers are doubles; object member order is preserved (insertion
/// order), which keeps emitted files diffable across runs.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}               // NOLINT
  Json(double n) : kind_(Kind::kNumber), number_(n) {}         // NOLINT
  Json(std::uint64_t n)                                        // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  Json(int n) : kind_(Kind::kNumber), number_(n) {}            // NOLINT
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : Json(std::string(s)) {}           // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                // NOLINT

  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;

  /// Array append (converts a null value into an array first).
  void push_back(Json value);

  /// Object member write access; inserts on first use, preserves
  /// insertion order. Converts a null value into an object first.
  Json& operator[](std::string_view key);

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Object member lookup; throws std::runtime_error when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Serializes the document. `indent` > 0 pretty-prints.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input or trailing garbage.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace lina::obs
