#pragma once

#include <chrono>

#include "lina/obs/registry.hpp"

namespace lina::obs {

/// RAII wall-clock timer: records the elapsed milliseconds into a
/// histogram on destruction. When the registry is disabled at
/// construction time the timer never reads the clock at all, so disabled
/// instrumentation stays free of syscall cost too.
///
///   {
///     obs::ScopedTimer timer(
///         obs::Registry::instance().histogram("lina.sim.session.run_ms"));
///     ... timed work ...
///   }
class ScopedTimer {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ScopedTimer(Histogram histogram) noexcept
      : histogram_(histogram), armed_(detail::recording()) {
    if (armed_) start_ = Clock::now();
  }

  ~ScopedTimer() {
    if (armed_) histogram_.record(elapsed_ms());
  }

  /// Milliseconds since construction (0 when the timer is disarmed).
  [[nodiscard]] double elapsed_ms() const noexcept {
    if (!armed_) return 0.0;
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram histogram_;
  bool armed_;
  Clock::time_point start_;
};

}  // namespace lina::obs
