#include "lina/obs/export.hpp"

#include <fstream>
#include <sstream>

namespace lina::obs {

namespace {

constexpr int kSchemaVersion = 1;

Json histogram_to_json(const HistogramSnapshot& h) {
  Json out = Json::object();
  out["count"] = Json(h.count);
  out["sum"] = Json(h.sum);
  out["min"] = Json(h.min);
  out["max"] = Json(h.max);
  out["mean"] = Json(h.mean());
  out["p50"] = Json(h.quantile(0.5));
  out["p90"] = Json(h.quantile(0.9));
  out["p99"] = Json(h.quantile(0.99));
  Json bounds = Json::array();
  for (const double b : h.upper_bounds) bounds.push_back(Json(b));
  out["upper_bounds"] = std::move(bounds);
  Json buckets = Json::array();
  for (const std::uint64_t b : h.buckets) buckets.push_back(Json(b));
  out["buckets"] = std::move(buckets);
  return out;
}

HistogramSnapshot histogram_from_json(const Json& j) {
  HistogramSnapshot h;
  h.count = static_cast<std::uint64_t>(j.at("count").as_number());
  h.sum = j.at("sum").as_number();
  h.min = j.at("min").as_number();
  h.max = j.at("max").as_number();
  for (const Json& b : j.at("upper_bounds").items())
    h.upper_bounds.push_back(b.as_number());
  for (const Json& b : j.at("buckets").items())
    h.buckets.push_back(static_cast<std::uint64_t>(b.as_number()));
  if (h.buckets.size() != h.upper_bounds.size() + 1)
    throw std::runtime_error(
        "parse_snapshot: bucket/bound count mismatch");
  std::uint64_t total = 0;
  for (const std::uint64_t b : h.buckets) total += b;
  if (total != h.count)
    throw std::runtime_error("parse_snapshot: bucket sum != count");
  return h;
}

}  // namespace

Json snapshot_to_json(const Snapshot& snapshot) {
  Json out = Json::object();
  Json counters = Json::object();
  for (const auto& [name, value] : snapshot.counters)
    counters[name] = Json(value);
  out["counters"] = std::move(counters);
  Json gauges = Json::object();
  for (const auto& [name, value] : snapshot.gauges) {
    Json gauge = Json::object();
    gauge["value"] = Json(value.first);
    gauge["max"] = Json(value.second);
    gauges[name] = std::move(gauge);
  }
  out["gauges"] = std::move(gauges);
  Json histograms = Json::object();
  for (const auto& [name, h] : snapshot.histograms)
    histograms[name] = histogram_to_json(h);
  out["histograms"] = std::move(histograms);
  return out;
}

Snapshot parse_snapshot(const Json& document) {
  // Accept either a bare snapshot object or a full run record (which
  // nests the snapshot under "metrics").
  const Json* metrics = document.find("metrics");
  const Json& root = metrics != nullptr ? *metrics : document;
  Snapshot snapshot;
  for (const auto& [name, value] : root.at("counters").members())
    snapshot.counters.emplace_back(
        name, static_cast<std::uint64_t>(value.as_number()));
  for (const auto& [name, value] : root.at("gauges").members())
    snapshot.gauges.emplace_back(
        name, std::make_pair(value.at("value").as_number(),
                             value.at("max").as_number()));
  for (const auto& [name, value] : root.at("histograms").members())
    snapshot.histograms.emplace_back(name, histogram_from_json(value));
  return snapshot;
}

std::string export_json(const RunInfo& info, const Snapshot& snapshot) {
  Json out = Json::object();
  out["schema_version"] = Json(kSchemaVersion);
  out["name"] = Json(info.name);
  out["seed"] = Json(info.seed);
  Json config = Json::object();
  for (const auto& [key, value] : info.config) config[key] = Json(value);
  out["config"] = std::move(config);
  Json phases = Json::array();
  for (const auto& [phase, wall_ms] : info.phases) {
    Json entry = Json::object();
    entry["phase"] = Json(phase);
    entry["wall_ms"] = Json(wall_ms);
    phases.push_back(std::move(entry));
  }
  out["phases"] = std::move(phases);
  Json results = Json::object();
  for (const auto& [key, value] : info.results) results[key] = Json(value);
  out["results"] = std::move(results);
  out["metrics"] = snapshot_to_json(snapshot);
  return out.dump(2) + "\n";
}

std::string export_csv(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "metric,kind,field,value\n";
  os.precision(17);
  for (const auto& [name, value] : snapshot.counters)
    os << name << ",counter,value," << value << "\n";
  for (const auto& [name, value] : snapshot.gauges) {
    os << name << ",gauge,value," << value.first << "\n";
    os << name << ",gauge,max," << value.second << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << name << ",histogram,count," << h.count << "\n";
    os << name << ",histogram,sum," << h.sum << "\n";
    os << name << ",histogram,min," << h.min << "\n";
    os << name << ",histogram,max," << h.max << "\n";
    os << name << ",histogram,mean," << h.mean() << "\n";
    os << name << ",histogram,p50," << h.quantile(0.5) << "\n";
    os << name << ",histogram,p90," << h.quantile(0.9) << "\n";
    os << name << ",histogram,p99," << h.quantile(0.99) << "\n";
  }
  return os.str();
}

std::string export_trace_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& event : events) {
    Json line = Json::object();
    line["t_ms"] = Json(event.time_ms);
    line["event"] = Json(event.name);
    line["value"] = Json(event.value);
    out += line.dump(0);
    out += '\n';
  }
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("obs: cannot open " + path);
  file.write(content.data(),
             static_cast<std::streamsize>(content.size()));
  if (!file) throw std::runtime_error("obs: write failed for " + path);
}

}  // namespace lina::obs
