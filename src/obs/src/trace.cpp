#include "lina/obs/trace.hpp"

#include <mutex>

#include "lina/obs/registry.hpp"

namespace lina::obs {

struct TraceRing::Impl {
  mutable std::mutex mutex;
  std::vector<TraceEvent> ring;
  std::size_t next = 0;       // write cursor
  bool wrapped = false;
  std::uint64_t dropped = 0;  // events overwritten after wrap
};

TraceRing& TraceRing::instance() {
  static TraceRing tracer;
  return tracer;
}

TraceRing::Impl& TraceRing::impl() const {
  static Impl impl;
  return impl;
}

void TraceRing::record(std::string_view name, double time_ms, double value) {
  if (!detail::recording()) return;
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  if (i.ring.size() < capacity_) {
    i.ring.push_back({time_ms, std::string(name), value});
    return;
  }
  i.ring[i.next] = {time_ms, std::string(name), value};
  i.next = (i.next + 1) % capacity_;
  i.wrapped = true;
  ++i.dropped;
}

std::vector<TraceEvent> TraceRing::events() const {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  if (!i.wrapped) return i.ring;
  std::vector<TraceEvent> ordered;
  ordered.reserve(i.ring.size());
  for (std::size_t k = 0; k < i.ring.size(); ++k)
    ordered.push_back(i.ring[(i.next + k) % i.ring.size()]);
  return ordered;
}

std::size_t TraceRing::size() const {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  return i.ring.size();
}

std::uint64_t TraceRing::dropped() const {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  return i.dropped;
}

void TraceRing::clear() {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  i.ring.clear();
  i.next = 0;
  i.wrapped = false;
  i.dropped = 0;
}

void TraceRing::set_capacity(std::size_t capacity) {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  capacity_ = capacity == 0 ? 1 : capacity;
  i.ring.clear();
  i.ring.shrink_to_fit();
  i.next = 0;
  i.wrapped = false;
  i.dropped = 0;
}

}  // namespace lina::obs
