#include "lina/obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace lina::obs {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t offset) {
  throw std::runtime_error("Json::parse: " + std::string(what) +
                           " at offset " + std::to_string(offset));
}

/// Emits a double the way the exporters need it: integral values print
/// without a fractional part, everything else with enough digits to
/// round-trip. Non-finite values have no JSON literal; emit null.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;  // UTF-8 passes through untouched
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c))
      fail(std::string("expected '") + c + "'", pos_);
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal)
      fail("bad literal", pos_);
    pos_ += literal.size();
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    skip_whitespace();
    if (consume('}')) return object;
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[key] = parse_value();
      skip_whitespace();
      if (consume('}')) return object;
      expect(',');
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    skip_whitespace();
    if (consume(']')) return array;
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      if (consume(']')) return array;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape", pos_);
          }
          // Exporter output only ever escapes control characters, so a
          // basic-plane UTF-8 encoding suffices here.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_ ||
        start == pos_)
      fail("bad number", start);
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("Json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("Json: not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("Json: not an array");
  return array_;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw std::runtime_error("Json: not an array");
  array_.push_back(std::move(value));
}

Json& Json::operator[](std::string_view key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw std::runtime_error("Json: not an object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), Json());
  return object_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr)
    throw std::runtime_error("Json: missing key '" + std::string(key) + "'");
  return *found;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("Json: not an object");
  return object_;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, number_); break;
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += indent > 0 ? "," : ", ";
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += indent > 0 ? "," : ", ";
        newline_pad(depth + 1);
        append_escaped(out, object_[i].first);
        out += ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace lina::obs
