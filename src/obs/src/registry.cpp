#include "lina/obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <mutex>

namespace lina::obs {

namespace detail {

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

HistogramCell::HistogramCell(const HistogramLayout& layout_in)
    : layout(layout_in), buckets(layout_in.bucket_count) {
  upper_bounds.reserve(layout.bucket_count - 1);
  double bound = layout.first_bound;
  for (std::size_t i = 0; i + 1 < layout.bucket_count; ++i) {
    upper_bounds.push_back(bound);
    bound *= layout.growth;
  }
}

namespace {

/// Atomic add for doubles (fetch_add on atomic<double> is C++20 but not
/// universally lock-free; a CAS loop is portable and contention here is
/// negligible).
void atomic_add(std::atomic<double>& cell, double delta) noexcept {
  double current = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& cell, double v) noexcept {
  double current = cell.load(std::memory_order_relaxed);
  while (v < current && !cell.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& cell, double v) noexcept {
  double current = cell.load(std::memory_order_relaxed);
  while (v > current && !cell.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void HistogramCell::record(double x) noexcept {
  if (std::isnan(x)) return;
  const auto it =
      std::upper_bound(upper_bounds.begin(), upper_bounds.end(), x);
  const auto index =
      static_cast<std::size_t>(it - upper_bounds.begin());
  buckets[index].fetch_add(1, std::memory_order_relaxed);
  // The first sample seeds min/max; count is bumped last so a concurrent
  // snapshot never reads count > 0 with untouched extrema.
  if (count.load(std::memory_order_relaxed) == 0) {
    min.store(x, std::memory_order_relaxed);
    max.store(x, std::memory_order_relaxed);
  } else {
    atomic_min(min, x);
    atomic_max(max, x);
  }
  atomic_add(sum, x);
  count.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate within bucket i; bucket bounds are
    // (upper_bounds[i-1], upper_bounds[i]], clamped to observed extrema
    // so the underflow/overflow buckets (and single samples) stay honest.
    double lo = (i == 0) ? min : upper_bounds[i - 1];
    double hi = (i < upper_bounds.size()) ? upper_bounds[i] : max;
    lo = std::clamp(lo, min, max);
    hi = std::clamp(hi, min, max);
    const double fraction =
        buckets[i] == 0
            ? 0.0
            : (target - before) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
  }
  return max;
}

struct Registry::Impl {
  std::mutex mutex;
  // Deques: stable cell addresses across registration.
  std::deque<detail::CounterCell> counter_cells;
  std::deque<detail::GaugeCell> gauge_cells;
  std::deque<detail::HistogramCell> histogram_cells;
  std::map<std::string, detail::CounterCell*, std::less<>> counters;
  std::map<std::string, detail::GaugeCell*, std::less<>> gauges;
  std::map<std::string, detail::HistogramCell*, std::less<>> histograms;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter Registry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  const auto it = i.counters.find(name);
  if (it != i.counters.end()) return Counter(it->second);
  detail::CounterCell* cell = &i.counter_cells.emplace_back();
  i.counters.emplace(std::string(name), cell);
  return Counter(cell);
}

Gauge Registry::gauge(std::string_view name) {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  const auto it = i.gauges.find(name);
  if (it != i.gauges.end()) return Gauge(it->second);
  detail::GaugeCell* cell = &i.gauge_cells.emplace_back();
  i.gauges.emplace(std::string(name), cell);
  return Gauge(cell);
}

Histogram Registry::histogram(std::string_view name,
                              HistogramOptions options) {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  const auto it = i.histograms.find(name);
  if (it != i.histograms.end()) return Histogram(it->second);
  detail::HistogramLayout layout;
  layout.first_bound = options.first_bound;
  layout.growth = options.growth;
  layout.bucket_count = std::max<std::size_t>(options.bucket_count, 2);
  detail::HistogramCell* cell = &i.histogram_cells.emplace_back(layout);
  i.histograms.emplace(std::string(name), cell);
  return Histogram(cell);
}

void Registry::reset() {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  for (auto& cell : i.counter_cells)
    cell.value.store(0, std::memory_order_relaxed);
  for (auto& cell : i.gauge_cells) {
    cell.value.store(0.0, std::memory_order_relaxed);
    cell.max.store(0.0, std::memory_order_relaxed);
    cell.touched.store(false, std::memory_order_relaxed);
  }
  for (auto& cell : i.histogram_cells) {
    for (auto& bucket : cell.buckets)
      bucket.store(0, std::memory_order_relaxed);
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0.0, std::memory_order_relaxed);
    cell.min.store(0.0, std::memory_order_relaxed);
    cell.max.store(0.0, std::memory_order_relaxed);
  }
}

Snapshot Registry::snapshot() const {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  Snapshot snap;
  for (const auto& [name, cell] : i.counters) {
    const std::uint64_t v = cell->value.load(std::memory_order_relaxed);
    if (v != 0) snap.counters.emplace_back(name, v);
  }
  for (const auto& [name, cell] : i.gauges) {
    if (!cell->touched.load(std::memory_order_relaxed)) continue;
    snap.gauges.emplace_back(
        name, std::make_pair(cell->value.load(std::memory_order_relaxed),
                             cell->max.load(std::memory_order_relaxed)));
  }
  for (const auto& [name, cell] : i.histograms) {
    const std::uint64_t count = cell->count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    HistogramSnapshot h;
    h.count = count;
    h.sum = cell->sum.load(std::memory_order_relaxed);
    h.min = cell->min.load(std::memory_order_relaxed);
    h.max = cell->max.load(std::memory_order_relaxed);
    h.upper_bounds = cell->upper_bounds;
    h.buckets.reserve(cell->buckets.size());
    for (const auto& bucket : cell->buckets)
      h.buckets.push_back(bucket.load(std::memory_order_relaxed));
    snap.histograms.emplace_back(name, std::move(h));
  }
  return snap;
}

}  // namespace lina::obs
