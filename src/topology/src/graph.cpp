#include "lina/topology/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace lina::topology {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::check_node(NodeId node) const {
  if (node >= adjacency_.size())
    throw std::out_of_range("Graph: node id out of range");
}

void Graph::add_edge(NodeId a, NodeId b, double weight) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (weight <= 0.0)
    throw std::invalid_argument("Graph::add_edge: non-positive weight");
  if (has_edge(a, b))
    throw std::invalid_argument("Graph::add_edge: duplicate edge");
  adjacency_[a].push_back({b, weight});
  adjacency_[b].push_back({a, weight});
  ++edge_count_;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const auto& adj = adjacency_[a];
  return std::any_of(adj.begin(), adj.end(),
                     [b](const Edge& e) { return e.to == b; });
}

double Graph::edge_weight(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  for (const Edge& e : adjacency_[a]) {
    if (e.to == b) return e.weight;
  }
  throw std::invalid_argument("Graph::edge_weight: no such edge");
}

std::span<const Graph::Edge> Graph::neighbors(NodeId node) const {
  check_node(node);
  return adjacency_[node];
}

std::size_t Graph::degree(NodeId node) const {
  check_node(node);
  return adjacency_[node].size();
}

bool Graph::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Edge& e : adjacency_[u]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == adjacency_.size();
}

}  // namespace lina::topology
