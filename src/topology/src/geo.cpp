#include "lina/topology/geo.hpp"

#include <cmath>

namespace lina::topology {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
// Speed of light in fiber: ~200,000 km/s => 200 km/ms.
constexpr double kFiberKmPerMs = 200.0;
}  // namespace

double great_circle_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.latitude_deg * kDegToRad;
  const double lat2 = b.latitude_deg * kDegToRad;
  const double dlat = lat2 - lat1;
  const double dlon = (b.longitude_deg - a.longitude_deg) * kDegToRad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_delay_ms(const GeoPoint& a, const GeoPoint& b,
                            double inflation) {
  return great_circle_km(a, b) * inflation / kFiberKmPerMs;
}

}  // namespace lina::topology
