#include "lina/topology/as_graph.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace lina::topology {

AsId AsGraph::add_as(AsTier tier, GeoPoint location) {
  links_.emplace_back();
  tiers_.push_back(tier);
  locations_.push_back(location);
  return static_cast<AsId>(tiers_.size() - 1);
}

void AsGraph::check(AsId as) const {
  if (as >= tiers_.size()) throw std::out_of_range("AsGraph: id out of range");
}

void AsGraph::add_link(AsId a, AsId b, AsRelationship rel_of_b_to_a) {
  check(a);
  check(b);
  if (a == b) throw std::invalid_argument("AsGraph: self-link");
  if (relationship(a, b).has_value())
    throw std::invalid_argument("AsGraph: duplicate link");
  const AsRelationship rel_of_a_to_b =
      rel_of_b_to_a == AsRelationship::kPeer
          ? AsRelationship::kPeer
          : (rel_of_b_to_a == AsRelationship::kProvider
                 ? AsRelationship::kCustomer
                 : AsRelationship::kProvider);
  links_[a].push_back({b, rel_of_b_to_a});
  links_[b].push_back({a, rel_of_a_to_b});
  ++link_count_;
}

void AsGraph::add_provider_link(AsId customer, AsId provider) {
  add_link(customer, provider, AsRelationship::kProvider);
}

void AsGraph::add_peer_link(AsId a, AsId b) {
  add_link(a, b, AsRelationship::kPeer);
}

std::span<const AsGraph::Link> AsGraph::links(AsId as) const {
  check(as);
  return links_[as];
}

std::size_t AsGraph::degree(AsId as) const {
  check(as);
  return links_[as].size();
}

std::optional<AsRelationship> AsGraph::relationship(AsId a, AsId b) const {
  check(a);
  check(b);
  for (const Link& link : links_[a]) {
    if (link.neighbor == b) return link.rel;
  }
  return std::nullopt;
}

AsTier AsGraph::tier(AsId as) const {
  check(as);
  return tiers_[as];
}

GeoPoint AsGraph::location(AsId as) const {
  check(as);
  return locations_[as];
}

std::vector<AsId> AsGraph::ases_of_tier(AsTier tier) const {
  std::vector<AsId> out;
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (tiers_[i] == tier) out.push_back(static_cast<AsId>(i));
  }
  return out;
}

namespace {

// Twelve world metro regions loosely matching the paper's vantage spread
// (US west/east, South America, Europe, Africa-adjacent islands, Asia,
// Oceania).
constexpr std::array<GeoPoint, 12> kMetroAnchors{{
    {45.5, -122.7},   // Portland / Oregon
    {37.8, -122.4},   // California
    {33.7, -84.4},    // Georgia
    {38.9, -77.0},    // Virginia
    {-23.5, -46.6},   // Sao Paulo
    {51.5, -0.1},     // London
    {48.9, 2.4},      // Paris
    {-20.2, 57.5},    // Mauritius
    {35.7, 139.7},    // Tokyo
    {-33.9, 151.2},   // Sydney
    {1.35, 103.8},    // Singapore
    {19.1, 72.9},     // Mumbai
}};

GeoPoint jitter(GeoPoint base, stats::Rng& rng, double spread_deg) {
  return GeoPoint{base.latitude_deg + rng.uniform(-spread_deg, spread_deg),
                  base.longitude_deg + rng.uniform(-spread_deg, spread_deg)};
}

}  // namespace

std::span<const GeoPoint> metro_anchors() { return kMetroAnchors; }

AsGraph make_hierarchical_internet(const InternetConfig& config,
                                   stats::Rng& rng) {
  if (config.tier1_count == 0 || config.tier2_count == 0)
    throw std::invalid_argument(
        "make_hierarchical_internet: need tier-1 and tier-2 ASes");
  if (config.tier2_min_providers == 0 || config.stub_min_providers == 0 ||
      config.tier2_min_providers > config.tier2_max_providers ||
      config.stub_min_providers > config.stub_max_providers)
    throw std::invalid_argument(
        "make_hierarchical_internet: bad multihoming bounds");

  AsGraph g;

  // Tier-1 core: one AS per metro anchor (cycling), full peer mesh.
  std::vector<AsId> tier1;
  for (std::size_t i = 0; i < config.tier1_count; ++i) {
    const GeoPoint base = kMetroAnchors[i % kMetroAnchors.size()];
    tier1.push_back(g.add_as(AsTier::kTier1, jitter(base, rng, 2.0)));
  }
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      g.add_peer_link(tier1[i], tier1[j]);
    }
  }

  // Tier-2: multihomed to tier-1 providers, lateral peering.
  std::vector<AsId> tier2;
  for (std::size_t i = 0; i < config.tier2_count; ++i) {
    const GeoPoint base = kMetroAnchors[rng.index(kMetroAnchors.size())];
    const AsId as = g.add_as(AsTier::kTier2, jitter(base, rng, 6.0));
    tier2.push_back(as);
    const std::size_t providers =
        config.tier2_min_providers +
        rng.index(config.tier2_max_providers - config.tier2_min_providers + 1);
    std::vector<AsId> pool = tier1;
    for (std::size_t p = 0; p < providers && !pool.empty(); ++p) {
      const std::size_t pick = rng.index(pool.size());
      g.add_provider_link(as, pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  // Lateral tier-2 peering: expected tier2_peering_degree per AS.
  const std::size_t peer_links = static_cast<std::size_t>(
      std::llround(config.tier2_peering_degree *
                   static_cast<double>(config.tier2_count) / 2.0));
  for (std::size_t attempts = 0, made = 0;
       made < peer_links && attempts < peer_links * 20; ++attempts) {
    const AsId a = tier2[rng.index(tier2.size())];
    const AsId b = tier2[rng.index(tier2.size())];
    if (a == b || g.relationship(a, b).has_value()) continue;
    g.add_peer_link(a, b);
    ++made;
  }

  // Stubs: multihomed to (mostly regional) tier-2 providers.
  for (std::size_t i = 0; i < config.stub_count; ++i) {
    const GeoPoint base = kMetroAnchors[rng.index(kMetroAnchors.size())];
    const GeoPoint loc = jitter(base, rng, 8.0);
    const AsId as = g.add_as(AsTier::kStub, loc);
    const std::size_t providers =
        config.stub_min_providers +
        rng.index(config.stub_max_providers - config.stub_min_providers + 1);
    std::vector<AsId> pool = tier2;
    for (std::size_t p = 0; p < providers && !pool.empty(); ++p) {
      std::size_t pick = rng.index(pool.size());
      if (rng.chance(config.regional_bias)) {
        // Choose the nearest remaining tier-2 instead of a random one.
        double best = great_circle_km(loc, g.location(pool[0]));
        pick = 0;
        for (std::size_t c = 1; c < pool.size(); ++c) {
          const double d = great_circle_km(loc, g.location(pool[c]));
          if (d < best) {
            best = d;
            pick = c;
          }
        }
      }
      g.add_provider_link(as, pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }

  return g;
}

}  // namespace lina::topology
