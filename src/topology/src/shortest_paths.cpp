#include "lina/topology/shortest_paths.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace lina::topology {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

SsspTree dijkstra(const Graph& graph, NodeId source) {
  const std::size_t n = graph.node_count();
  if (source >= n) throw std::out_of_range("dijkstra: source out of range");

  SsspTree tree;
  tree.source = source;
  tree.distance.assign(n, kInf);
  tree.parent.assign(n, kNoNode);
  tree.first_hop.assign(n, kNoNode);

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  tree.distance[source] = 0.0;
  tree.first_hop[source] = source;
  queue.push({0.0, source});

  std::vector<bool> done(n, false);
  while (!queue.empty()) {
    const auto [dist, u] = queue.top();
    queue.pop();
    if (done[u]) continue;
    done[u] = true;
    for (const Graph::Edge& e : graph.neighbors(u)) {
      const double candidate = dist + e.weight;
      const bool better = candidate < tree.distance[e.to];
      // Deterministic tie-break: equal distance, lower-id parent wins.
      const bool tie_win =
          candidate == tree.distance[e.to] && u < tree.parent[e.to];
      if (better || tie_win) {
        tree.distance[e.to] = candidate;
        tree.parent[e.to] = u;
        tree.first_hop[e.to] = (u == source) ? e.to : tree.first_hop[u];
        if (better) queue.push({candidate, e.to});
      }
    }
  }
  return tree;
}

AllPairsShortestPaths::AllPairsShortestPaths(const Graph& graph) {
  trees_.reserve(graph.node_count());
  for (std::size_t u = 0; u < graph.node_count(); ++u) {
    trees_.push_back(dijkstra(graph, static_cast<NodeId>(u)));
  }
}

double AllPairsShortestPaths::distance(NodeId u, NodeId v) const {
  if (u >= trees_.size() || v >= trees_.size())
    throw std::out_of_range("AllPairsShortestPaths::distance");
  return trees_[u].distance[v];
}

NodeId AllPairsShortestPaths::next_hop(NodeId u, NodeId v) const {
  if (u >= trees_.size() || v >= trees_.size())
    throw std::out_of_range("AllPairsShortestPaths::next_hop");
  return trees_[u].first_hop[v];
}

double AllPairsShortestPaths::diameter() const {
  double best = 0.0;
  for (const SsspTree& tree : trees_) {
    for (const double d : tree.distance) {
      if (d != kInf) best = std::max(best, d);
    }
  }
  return best;
}

}  // namespace lina::topology
