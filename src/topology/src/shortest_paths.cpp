#include "lina/topology/shortest_paths.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>

#include "lina/exec/parallel.hpp"

namespace lina::topology {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

SsspTree dijkstra(const Graph& graph, NodeId source) {
  const std::size_t n = graph.node_count();
  if (source >= n) throw std::out_of_range("dijkstra: source out of range");

  SsspTree tree;
  tree.source = source;
  tree.distance.assign(n, kInf);
  tree.parent.assign(n, kNoNode);
  tree.first_hop.assign(n, kNoNode);

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::vector<Item> backing;
  backing.reserve(n);  // pre-size the heap's backing store
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue(
      std::greater<>{}, std::move(backing));
  tree.distance[source] = 0.0;
  tree.first_hop[source] = source;
  queue.push({0.0, source});

  // uint8_t, not vector<bool>: byte loads beat bit-twiddling on this
  // hot path (see bench/micro_datastructures.cpp BM_Dijkstra).
  std::vector<std::uint8_t> done(n, 0);
  while (!queue.empty()) {
    const auto [dist, u] = queue.top();
    queue.pop();
    // Drop stale entries (superseded by a shorter relaxation) before
    // paying for the done-flag write and the neighbor scan.
    if (dist > tree.distance[u]) continue;
    if (done[u] != 0) continue;
    done[u] = 1;
    for (const Graph::Edge& e : graph.neighbors(u)) {
      const double candidate = dist + e.weight;
      const bool better = candidate < tree.distance[e.to];
      // Deterministic tie-break: equal distance, lower-id parent wins.
      const bool tie_win =
          candidate == tree.distance[e.to] && u < tree.parent[e.to];
      if (better || tie_win) {
        tree.distance[e.to] = candidate;
        tree.parent[e.to] = u;
        tree.first_hop[e.to] = (u == source) ? e.to : tree.first_hop[u];
        if (better) queue.push({candidate, e.to});
      }
    }
  }
  return tree;
}

AllPairsShortestPaths::AllPairsShortestPaths(const Graph& graph) {
  // One Dijkstra per source, fanned across the lina::exec pool; sources
  // are independent and results land in source order, so the table is
  // bit-identical to the serial build at any thread count.
  trees_ = exec::parallel_map(graph.node_count(), [&](std::size_t u) {
    return dijkstra(graph, static_cast<NodeId>(u));
  });
}

double AllPairsShortestPaths::distance(NodeId u, NodeId v) const {
  if (u >= trees_.size() || v >= trees_.size())
    throw std::out_of_range("AllPairsShortestPaths::distance");
  return trees_[u].distance[v];
}

NodeId AllPairsShortestPaths::next_hop(NodeId u, NodeId v) const {
  if (u >= trees_.size() || v >= trees_.size())
    throw std::out_of_range("AllPairsShortestPaths::next_hop");
  return trees_[u].first_hop[v];
}

double AllPairsShortestPaths::diameter() const {
  double best = 0.0;
  for (const SsspTree& tree : trees_) {
    for (const double d : tree.distance) {
      if (d != kInf) best = std::max(best, d);
    }
  }
  return best;
}

}  // namespace lina::topology
