#include "lina/topology/generators.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

namespace lina::topology {

Graph make_chain(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_chain: n == 0");
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return g;
}

Graph make_clique(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_clique: n == 0");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return g;
}

Graph make_star(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_star: n == 0");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(0, static_cast<NodeId>(i));
  }
  return g;
}

Graph make_binary_tree(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_binary_tree: n == 0");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(static_cast<NodeId>((i - 1) / 2), static_cast<NodeId>(i));
  }
  return g;
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("make_grid: empty dimension");
  Graph g(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph make_erdos_renyi(std::size_t n, double p, stats::Rng& rng) {
  if (n == 0) throw std::invalid_argument("make_erdos_renyi: n == 0");
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("make_erdos_renyi: p out of [0,1]");
  Graph g(n);
  // Random spanning tree guarantees connectivity: attach each node to a
  // uniformly random earlier node.
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(static_cast<NodeId>(rng.index(i)), static_cast<NodeId>(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto a = static_cast<NodeId>(i);
      const auto b = static_cast<NodeId>(j);
      if (!g.has_edge(a, b) && rng.chance(p)) g.add_edge(a, b);
    }
  }
  return g;
}

Graph make_barabasi_albert(std::size_t n, std::size_t m, stats::Rng& rng) {
  if (m == 0) throw std::invalid_argument("make_barabasi_albert: m == 0");
  if (n < m + 1)
    throw std::invalid_argument("make_barabasi_albert: n < m + 1");
  Graph g(n);
  // Seed: star over the first m+1 nodes.
  std::vector<NodeId> endpoint_pool;  // node repeated once per incident edge
  for (std::size_t i = 1; i <= m; ++i) {
    g.add_edge(0, static_cast<NodeId>(i));
    endpoint_pool.push_back(0);
    endpoint_pool.push_back(static_cast<NodeId>(i));
  }
  for (std::size_t i = m + 1; i < n; ++i) {
    const auto node = static_cast<NodeId>(i);
    std::vector<NodeId> targets;
    while (targets.size() < m) {
      const NodeId candidate = endpoint_pool[rng.index(endpoint_pool.size())];
      if (candidate != node && !g.has_edge(node, candidate)) {
        targets.push_back(candidate);
        g.add_edge(node, candidate);
      }
    }
    for (const NodeId t : targets) {
      endpoint_pool.push_back(t);
      endpoint_pool.push_back(node);
    }
  }
  return g;
}

}  // namespace lina::topology
