#pragma once

#include <cstddef>

#include "lina/stats/rng.hpp"
#include "lina/topology/graph.hpp"

namespace lina::topology {

/// Deterministic generators for the §5 analytic topologies plus standard
/// random-graph families used for robustness sweeps.

/// Routers 0-1-2-...-(n-1) in a line (Figure 5). Requires n >= 1.
[[nodiscard]] Graph make_chain(std::size_t n);

/// Complete graph on n nodes. Requires n >= 1.
[[nodiscard]] Graph make_clique(std::size_t n);

/// Hub node 0 with n-1 leaves. Requires n >= 1.
[[nodiscard]] Graph make_star(std::size_t n);

/// Complete binary tree with n nodes, heap-indexed (children of i are
/// 2i+1, 2i+2). Requires n >= 1.
[[nodiscard]] Graph make_binary_tree(std::size_t n);

/// rows x cols grid. Requires rows, cols >= 1.
[[nodiscard]] Graph make_grid(std::size_t rows, std::size_t cols);

/// Erdos-Renyi G(n, p), conditioned on connectivity by adding a random
/// spanning tree first. Requires n >= 1, p in [0, 1].
[[nodiscard]] Graph make_erdos_renyi(std::size_t n, double p,
                                     stats::Rng& rng);

/// Barabasi-Albert preferential attachment: each new node attaches to `m`
/// existing nodes. Produces the heavy-tailed degree distribution typical of
/// router-level Internet graphs. Requires n >= m + 1, m >= 1.
[[nodiscard]] Graph make_barabasi_albert(std::size_t n, std::size_t m,
                                         stats::Rng& rng);

}  // namespace lina::topology
