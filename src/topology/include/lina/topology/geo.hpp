#pragma once

namespace lina::topology {

/// A point on the globe; used to place ASes and vantage routers so that the
/// latency model (DESIGN.md substitution for iPlane) can compute
/// distance-proportional delays.
struct GeoPoint {
  double latitude_deg = 0.0;   // [-90, 90]
  double longitude_deg = 0.0;  // [-180, 180]
};

/// Great-circle distance in kilometers (haversine; mean Earth radius).
[[nodiscard]] double great_circle_km(const GeoPoint& a, const GeoPoint& b);

/// One-way propagation delay in milliseconds for a great-circle path,
/// assuming light in fiber (~2/3 c) and a route-inflation factor that
/// accounts for paths not following geodesics (default 1.6, a conventional
/// fit to measured Internet RTTs).
[[nodiscard]] double propagation_delay_ms(const GeoPoint& a, const GeoPoint& b,
                                          double inflation = 1.6);

}  // namespace lina::topology
