#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lina/stats/rng.hpp"
#include "lina/topology/geo.hpp"

namespace lina::topology {

using AsId = std::uint32_t;

/// The business relationship a neighbor has *to* a given AS.
enum class AsRelationship : std::uint8_t {
  kProvider,  // the neighbor sells transit to this AS
  kCustomer,  // the neighbor buys transit from this AS
  kPeer,      // settlement-free peering
};

enum class AsTier : std::uint8_t {
  kTier1 = 1,  // transit-free core (peers with all other tier-1s)
  kTier2 = 2,  // regional transit providers
  kStub = 3,   // edge networks: enterprises, eyeball and content ASes
};

/// An AS-level Internet topology annotated with Gao-style business
/// relationships and geographic locations.
///
/// This is the substrate the policy-routing engine (src/routing) runs on to
/// produce the per-vantage RIBs that substitute for the paper's Routeviews
/// dumps, and the plane the latency model measures distances over.
class AsGraph {
 public:
  struct Link {
    AsId neighbor;
    AsRelationship rel;  // role of `neighbor` relative to the owning AS
  };

  /// Adds an AS; returns its dense id.
  AsId add_as(AsTier tier, GeoPoint location);

  /// Adds a transit link: `provider` sells transit to `customer`.
  /// Throws on self-links, duplicates, or out-of-range ids.
  void add_provider_link(AsId customer, AsId provider);

  /// Adds a settlement-free peering link.
  void add_peer_link(AsId a, AsId b);

  [[nodiscard]] std::span<const Link> links(AsId as) const;
  [[nodiscard]] std::size_t degree(AsId as) const;

  /// Role of `b` relative to `a`, or nullopt if not adjacent.
  [[nodiscard]] std::optional<AsRelationship> relationship(AsId a,
                                                           AsId b) const;

  [[nodiscard]] AsTier tier(AsId as) const;
  [[nodiscard]] GeoPoint location(AsId as) const;

  [[nodiscard]] std::size_t as_count() const { return tiers_.size(); }
  [[nodiscard]] std::size_t link_count() const { return link_count_; }

  /// All ASes of a given tier.
  [[nodiscard]] std::vector<AsId> ases_of_tier(AsTier tier) const;

 private:
  void check(AsId as) const;
  void add_link(AsId a, AsId b, AsRelationship rel_of_b_to_a);

  std::vector<std::vector<Link>> links_;
  std::vector<AsTier> tiers_;
  std::vector<GeoPoint> locations_;
  std::size_t link_count_ = 0;
};

/// Configuration for the hierarchical Internet generator.
struct InternetConfig {
  std::size_t tier1_count = 12;
  std::size_t tier2_count = 80;
  std::size_t stub_count = 600;

  /// Multihoming: how many providers each non-tier-1 AS buys from.
  std::size_t tier2_min_providers = 1;
  std::size_t tier2_max_providers = 3;
  std::size_t stub_min_providers = 1;
  std::size_t stub_max_providers = 2;

  /// Average number of lateral peering links per tier-2 AS.
  double tier2_peering_degree = 2.0;

  /// Probability that a stub's provider choice is biased to a geographically
  /// nearby tier-2 (vs uniformly random) — gives the graph locality.
  double regional_bias = 0.8;
};

/// Builds a three-tier Internet-like AS graph:
///  - tier-1 clique (full peer mesh) spread across world metro regions;
///  - tier-2 ASes multihomed to tier-1 providers, with lateral peering;
///  - stub ASes multihomed to (mostly regional) tier-2 providers.
/// The result is connected and valley-free-routable by construction.
[[nodiscard]] AsGraph make_hierarchical_internet(const InternetConfig& config,
                                                 stats::Rng& rng);

/// The metro anchor points the generator scatters ASes around; exposed so
/// tests and vantage-placement code can reuse them.
[[nodiscard]] std::span<const GeoPoint> metro_anchors();

}  // namespace lina::topology
