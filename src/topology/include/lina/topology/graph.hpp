#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lina::topology {

using NodeId = std::uint32_t;

/// Sentinel for "no node" (unreachable destinations, missing parents).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// An undirected weighted graph stored as adjacency lists.
///
/// This is the substrate for the analytic-model topologies (§5: chain,
/// clique, tree, star) and for router-level simulations. Node ids are dense
/// integers [0, node_count()). Edges carry a positive weight (hop metrics
/// use weight 1).
class Graph {
 public:
  struct Edge {
    NodeId to;
    double weight;
  };

  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  /// Appends a new isolated node and returns its id.
  NodeId add_node();

  /// Adds an undirected edge. Throws on self-loops, out-of-range ids,
  /// non-positive weights, or duplicate edges.
  void add_edge(NodeId a, NodeId b, double weight = 1.0);

  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;

  /// Weight of edge (a, b); throws if absent.
  [[nodiscard]] double edge_weight(NodeId a, NodeId b) const;

  [[nodiscard]] std::span<const Edge> neighbors(NodeId node) const;
  [[nodiscard]] std::size_t degree(NodeId node) const;

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// True iff every node can reach every other node.
  [[nodiscard]] bool connected() const;

 private:
  void check_node(NodeId node) const;

  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace lina::topology
