#pragma once

#include <vector>

#include "lina/topology/graph.hpp"

namespace lina::topology {

/// Single-source shortest-path tree.
///
/// Ties are broken deterministically in favor of the lower-id predecessor so
/// that forwarding "ports" are stable across runs — essential because the
/// update-cost methodology compares ports before and after mobility events.
struct SsspTree {
  NodeId source = kNoNode;
  std::vector<double> distance;   // distance[v]; +inf if unreachable
  std::vector<NodeId> parent;     // predecessor toward source; kNoNode at src
  std::vector<NodeId> first_hop;  // first hop from source toward v; source at v==source
};

/// Dijkstra with deterministic tie-breaking. Throws on out-of-range source.
[[nodiscard]] SsspTree dijkstra(const Graph& graph, NodeId source);

/// All-pairs next-hop and distance tables, built by running Dijkstra from
/// every node. next_hop(u, v) is the neighbor of u on the (deterministic)
/// shortest path toward v — i.e. u's forwarding "port" for an endpoint
/// attached at v, the quantity the §5 name-based-routing analysis compares
/// across mobility events.
class AllPairsShortestPaths {
 public:
  explicit AllPairsShortestPaths(const Graph& graph);

  [[nodiscard]] double distance(NodeId u, NodeId v) const;

  /// The forwarding port at u for destination v; u itself for v == u
  /// (the "local port"); kNoNode if unreachable.
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId v) const;

  [[nodiscard]] std::size_t node_count() const { return trees_.size(); }

  /// Largest finite pairwise distance.
  [[nodiscard]] double diameter() const;

 private:
  std::vector<SsspTree> trees_;
};

}  // namespace lina::topology
