#include "lina/trace/reader.hpp"

#include <algorithm>
#include <cstring>

#include "lina/obs/metrics.hpp"

namespace lina::trace {

namespace {

/// Reads [begin, end) of a file into `into` (resized), throwing with the
/// file name on failure.
void read_range(const std::filesystem::path& path, std::ifstream& file,
                std::uint64_t begin, std::uint64_t end,
                std::vector<char>& into) {
  into.resize(end - begin);
  file.seekg(static_cast<std::streamoff>(begin));
  if (!file.read(into.data(), static_cast<std::streamsize>(into.size()))) {
    throw TraceFormatError(path.string() + ": read failed at offset " +
                           std::to_string(begin));
  }
}

struct Footer {
  std::uint32_t crc = 0;
  std::uint64_t total_bytes = 0;
};

Footer decode_footer(const std::filesystem::path& path,
                     const char* data, std::uint64_t file_size) {
  ByteCursor cursor(data, kFooterBytes, path.string());
  std::array<char, 4> magic{};
  cursor.bytes(magic.data(), magic.size());
  if (magic != kFooterMagic) {
    throw TraceFormatError(path.string() +
                           ": footer magic missing (truncated shard?)");
  }
  Footer footer;
  footer.crc = cursor.u32();
  footer.total_bytes = cursor.u64();
  if (footer.total_bytes != file_size) {
    throw TraceFormatError(path.string() + ": footer records " +
                           std::to_string(footer.total_bytes) +
                           " bytes but the file holds " +
                           std::to_string(file_size) +
                           " (truncated or concatenated shard)");
  }
  return footer;
}

}  // namespace

ShardHeader validate_shard(const std::filesystem::path& path, Validate mode) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw TraceFormatError(path.string() + ": cannot open shard");
  }
  file.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(file.tellg());
  if (file_size < kHeaderBytes + kFooterBytes) {
    throw TraceFormatError(path.string() + ": file of " +
                           std::to_string(file_size) +
                           " bytes is shorter than header + footer");
  }

  std::vector<char> bytes;
  read_range(path, file, 0, kHeaderBytes, bytes);
  const ShardHeader header =
      decode_header(bytes.data(), file_size, path.string());

  read_range(path, file, file_size - kFooterBytes, file_size, bytes);
  const Footer footer = decode_footer(path, bytes.data(), file_size);

  if (mode == Validate::kCrc) {
    file.seekg(0);
    std::uint32_t crc = 0;
    std::vector<char> chunk(1 << 20);
    std::uint64_t left = file_size - kFooterBytes;
    while (left > 0) {
      const std::size_t n =
          static_cast<std::size_t>(std::min<std::uint64_t>(left,
                                                           chunk.size()));
      if (!file.read(chunk.data(), static_cast<std::streamsize>(n))) {
        throw TraceFormatError(path.string() + ": read failed during CRC");
      }
      crc = crc32(crc, chunk.data(), n);
      left -= n;
    }
    if (crc != footer.crc) {
      throw TraceFormatError(path.string() + ": CRC32 mismatch (stored " +
                             std::to_string(footer.crc) + ", computed " +
                             std::to_string(crc) + ") — corrupt shard");
    }
  }
  return header;
}

ShardSet ShardSet::discover(const std::filesystem::path& dir, Validate mode) {
  if (!std::filesystem::is_directory(dir)) {
    throw TraceFormatError(dir.string() + ": not a trace-set directory");
  }
  ShardSet set;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".ltrc") {
      continue;
    }
    set.shards_.push_back(
        ShardInfo{entry.path(), validate_shard(entry.path(), mode)});
  }
  if (set.shards_.empty()) {
    throw TraceFormatError(dir.string() + ": no .ltrc shards found");
  }
  std::sort(set.shards_.begin(), set.shards_.end(),
            [](const ShardInfo& a, const ShardInfo& b) {
              return a.header.shard_index < b.header.shard_index;
            });
  const ShardHeader& first = set.shards_.front().header;
  if (set.shards_.size() != first.shard_count) {
    throw TraceFormatError(
        dir.string() + ": found " + std::to_string(set.shards_.size()) +
        " shards, headers declare " + std::to_string(first.shard_count));
  }
  std::uint32_t expected_user = first.first_user;
  for (std::size_t i = 0; i < set.shards_.size(); ++i) {
    const ShardHeader& h = set.shards_[i].header;
    const std::string name = set.shards_[i].path.string();
    if (h.shard_index != i) {
      throw TraceFormatError(dir.string() + ": shard index " +
                             std::to_string(i) + " is missing or duplicated");
    }
    if (h.seed != first.seed || h.day_count != first.day_count ||
        h.shard_count != first.shard_count) {
      throw TraceFormatError(name +
                             ": seed/day-count/shard-count disagrees with "
                             "the rest of the set");
    }
    if (h.first_user != expected_user) {
      throw TraceFormatError(name + ": user range starts at " +
                             std::to_string(h.first_user) + ", expected " +
                             std::to_string(expected_user) +
                             " (ranges must be contiguous)");
    }
    expected_user += h.user_count;
  }
  return set;
}

std::uint32_t ShardSet::user_count() const {
  std::uint32_t n = 0;
  for (const ShardInfo& s : shards_) n += s.header.user_count;
  return n;
}

std::uint64_t ShardSet::visit_count() const {
  std::uint64_t n = 0;
  for (const ShardInfo& s : shards_) n += s.header.visit_count;
  return n;
}

std::uint64_t ShardSet::event_count() const {
  std::uint64_t n = 0;
  for (const ShardInfo& s : shards_) n += s.header.event_count;
  return n;
}

std::uint64_t ShardSet::seed() const { return shards_.front().header.seed; }

std::uint32_t ShardSet::day_count() const {
  return shards_.front().header.day_count;
}

TraceReader::TraceReader(const ShardInfo& shard) : shard_(shard) {
  std::ifstream file(shard_.path, std::ios::binary);
  if (!file) {
    throw TraceFormatError(shard_.path.string() + ": cannot open shard");
  }
  read_range(shard_.path, file, kHeaderBytes, shard_.header.events_offset,
             image_);
  cursor_ = std::make_unique<ByteCursor>(image_.data(), image_.size(),
                                         shard_.path.string());
  obs::metric::trace_shards_read().add(1);
  obs::metric::trace_bytes_read().add(image_.size());
}

std::optional<mobility::DeviceTrace> TraceReader::next() {
  if (decoded_ == shard_.header.user_count) {
    if (!cursor_->done()) {
      throw TraceFormatError(shard_.path.string() + ": " +
                             std::to_string(cursor_->remaining()) +
                             " stray bytes after the last user block");
    }
    return std::nullopt;
  }
  const auto user_id = static_cast<std::uint32_t>(cursor_->varint());
  const std::uint32_t expected = shard_.header.first_user + decoded_;
  if (user_id != expected) {
    throw TraceFormatError(shard_.path.string() + ": user block holds id " +
                           std::to_string(user_id) + ", expected " +
                           std::to_string(expected));
  }
  const std::uint64_t visit_count = cursor_->varint();
  if (visit_count == 0 || visit_count > shard_.header.visit_count) {
    throw TraceFormatError(shard_.path.string() + ": implausible visit count " +
                           std::to_string(visit_count) + " for user " +
                           std::to_string(user_id));
  }
  const std::uint8_t flags = cursor_->u8();

  std::vector<mobility::DeviceVisit> visits(visit_count);
  double start = cursor_->f64();
  for (auto& v : visits) v.duration_hours = cursor_->f64();
  if ((flags & kBlockExplicitStarts) != 0) {
    for (auto& v : visits) v.start_hour = cursor_->f64();
  } else {
    // The generator's own accumulation, replayed op-for-op: bit-identical
    // start hours without storing them.
    for (auto& v : visits) {
      v.start_hour = start;
      start = start + v.duration_hours;
    }
  }
  std::int64_t address = 0;
  for (auto& v : visits) {
    address += zigzag_decode(cursor_->varint());
    v.address = net::Ipv4Address(static_cast<std::uint32_t>(address));
  }
  for (auto& v : visits) {
    const std::uint8_t length = cursor_->u8();
    if (length > 32) {
      throw TraceFormatError(shard_.path.string() + ": prefix length " +
                             std::to_string(length) + " for user " +
                             std::to_string(user_id));
    }
    v.prefix = net::Prefix(v.address, length);
  }
  std::int64_t as = 0;
  for (auto& v : visits) {
    as += zigzag_decode(cursor_->varint());
    v.as = static_cast<topology::AsId>(as);
  }
  for (std::size_t i = 0; i < visits.size(); i += 8) {
    const std::uint8_t bits = cursor_->u8();
    for (std::size_t b = 0; b < 8 && i + b < visits.size(); ++b) {
      visits[i + b].cellular = (bits & (1u << b)) != 0;
    }
  }

  mobility::DeviceTrace trace(user_id, shard_.header.day_count);
  for (mobility::DeviceVisit& v : visits) trace.append(v);
  ++decoded_;
  obs::metric::trace_visits_read().add(visit_count);
  return trace;
}

EventReader::EventReader(const ShardInfo& shard, std::size_t buffer_bytes)
    : shard_(shard),
      file_(shard.path, std::ios::binary),
      buffer_(std::max<std::size_t>(buffer_bytes, 256)) {
  if (!file_) {
    throw TraceFormatError(shard_.path.string() + ": cannot open shard");
  }
  file_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(file_.tellg());
  section_left_ = file_size - kFooterBytes - shard_.header.events_offset;
  file_.seekg(static_cast<std::streamoff>(shard_.header.events_offset));
}

void EventReader::refill() {
  const std::size_t keep = buffer_len_ - buffer_pos_;
  std::memmove(buffer_.data(), buffer_.data() + buffer_pos_, keep);
  buffer_pos_ = 0;
  buffer_len_ = keep;
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(section_left_, buffer_.size() - buffer_len_));
  if (want == 0) return;
  if (!file_.read(buffer_.data() + buffer_len_,
                  static_cast<std::streamsize>(want))) {
    throw TraceFormatError(shard_.path.string() +
                           ": read failed in event section");
  }
  buffer_len_ += want;
  section_left_ -= want;
  obs::metric::trace_bytes_read().add(want);
}

bool EventReader::next(TraceEvent& out) {
  if (decoded_ == shard_.header.event_count) return false;
  // An encoded event is at most 25 bytes; refill keeps at least one whole
  // record in the window so varints never straddle a buffer boundary.
  if (buffer_len_ - buffer_pos_ < 32 && section_left_ > 0) refill();
  ByteCursor cursor(buffer_.data() + buffer_pos_, buffer_len_ - buffer_pos_,
                    shard_.path.string());
  out.hour = cursor.f64();
  previous_user_ += zigzag_decode(cursor.varint());
  out.user = static_cast<std::uint32_t>(previous_user_);
  out.address =
      net::Ipv4Address(static_cast<std::uint32_t>(cursor.varint()));
  const std::uint8_t length = cursor.u8();
  if (length > 32) {
    throw TraceFormatError(shard_.path.string() +
                           ": prefix length " + std::to_string(length) +
                           " in event section");
  }
  out.prefix = net::Prefix(out.address, length);
  out.as = static_cast<topology::AsId>(cursor.varint());
  const std::uint8_t flags = cursor.u8();
  out.cellular = (flags & 0x01) != 0;
  out.initial = (flags & 0x02) != 0;
  buffer_pos_ += cursor.offset();
  ++decoded_;
  return true;
}

}  // namespace lina::trace
