#include "lina/trace/streaming.hpp"

#include <cstdio>

#include "lina/exec/parallel.hpp"
#include "lina/prof/prof.hpp"

namespace lina::trace {

std::filesystem::path shard_file_name(std::uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%05u.ltrc", index);
  return {name};
}

ShardSet StreamingWorkload::write_shards(
    const std::filesystem::path& dir) const {
  PROF_SPAN("lina.trace.write_shards");
  const mobility::DeviceWorkloadConfig& workload = generator_.config();
  if (workload.user_count == 0) {
    throw std::invalid_argument("StreamingWorkload: empty workload");
  }
  const std::size_t per_shard = std::max<std::size_t>(
      1, std::min(config_.users_per_shard, workload.user_count));
  const std::size_t shard_count =
      (workload.user_count + per_shard - 1) / per_shard;

  std::filesystem::create_directories(dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ltrc") {
      throw TraceFormatError(dir.string() +
                             ": already holds .ltrc shards — refusing to "
                             "mix trace sets (use a fresh directory)");
    }
  }

  // Shards are independent: shard s is a pure function of the workload
  // config and its user-id range (each user draws from its own
  // seed-labelled substream), so the fan-out is bit-identical at any
  // thread count. Per-shard staging memory is the bound threads multiply.
  exec::parallel_for(shard_count, [&](std::size_t s) {
    const std::uint32_t first =
        static_cast<std::uint32_t>(s * per_shard);
    const std::uint32_t count = static_cast<std::uint32_t>(
        std::min(per_shard, workload.user_count - first));
    ShardMeta meta;
    meta.seed = workload.seed;
    meta.shard_index = static_cast<std::uint32_t>(s);
    meta.shard_count = static_cast<std::uint32_t>(shard_count);
    meta.first_user = first;
    meta.user_count = count;
    meta.day_count = static_cast<std::uint32_t>(workload.days);
    TraceWriter writer(dir / shard_file_name(meta.shard_index), meta);
    for (std::uint32_t u = 0; u < count; ++u) {
      writer.append(generator_.generate_user(first + u));
    }
    writer.finish();
  });

  return ShardSet::discover(
      dir, config_.verify_after_write ? Validate::kCrc : Validate::kHeader);
}

DeviceTraceStream::DeviceTraceStream(const ShardSet& set) : set_(&set) {}

bool DeviceTraceStream::done() const {
  return reader_ == nullptr && shard_ == set_->shards().size();
}

std::vector<mobility::DeviceTrace> DeviceTraceStream::next_batch(
    std::size_t max_users) {
  std::vector<mobility::DeviceTrace> batch;
  batch.reserve(max_users);
  while (batch.size() < max_users) {
    if (reader_ == nullptr) {
      if (shard_ == set_->shards().size()) break;
      reader_ = std::make_unique<TraceReader>(set_->shards()[shard_]);
    }
    std::optional<mobility::DeviceTrace> trace = reader_->next();
    if (!trace.has_value()) {
      reader_.reset();
      ++shard_;
      continue;
    }
    batch.push_back(std::move(*trace));
    ++next_index_;
  }
  return batch;
}

}  // namespace lina::trace
