#include "lina/trace/format.hpp"

namespace lina::trace {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::uint32_t crc, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrcTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void put_u8(std::vector<char>& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::vector<char>& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xFF));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<char>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_varint(std::vector<char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(out, static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(out, static_cast<std::uint8_t>(v));
}

void ByteCursor::overrun(const char* what) const {
  throw TraceFormatError(context_ + ": truncated while reading " + what +
                         " at offset " + std::to_string(offset_));
}

std::uint8_t ByteCursor::u8() {
  if (remaining() < 1) overrun("u8");
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint16_t ByteCursor::u16() {
  if (remaining() < 2) overrun("u16");
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data_[offset_ + i]) << (8 * i));
  }
  offset_ += 2;
  return v;
}

std::uint32_t ByteCursor::u32() {
  if (remaining() < 4) overrun("u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(data_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 4;
  return v;
}

std::uint64_t ByteCursor::u64() {
  if (remaining() < 8) overrun("u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(data_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 8;
  return v;
}

double ByteCursor::f64() { return std::bit_cast<double>(u64()); }

std::uint64_t ByteCursor::varint() {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = u8();
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  throw TraceFormatError(context_ + ": varint longer than 64 bits at offset " +
                         std::to_string(offset_));
}

void ByteCursor::bytes(void* into, std::size_t n) {
  if (remaining() < n) overrun("bytes");
  auto* out = static_cast<char*>(into);
  for (std::size_t i = 0; i < n; ++i) out[i] = data_[offset_ + i];
  offset_ += n;
}

void encode_header(std::vector<char>& out, const ShardHeader& header) {
  const std::size_t base = out.size();
  out.insert(out.end(), kShardMagic.begin(), kShardMagic.end());
  put_u16(out, header.version);
  put_u16(out, kEndianMarker);
  put_u64(out, header.seed);
  put_u32(out, header.shard_index);
  put_u32(out, header.shard_count);
  put_u32(out, header.first_user);
  put_u32(out, header.user_count);
  put_u32(out, header.day_count);
  put_u32(out, 0);  // reserved
  put_u64(out, header.visit_count);
  put_u64(out, header.event_count);
  put_u64(out, header.events_offset);
  if (out.size() - base != kHeaderBytes) {
    throw std::logic_error("encode_header: layout drifted from kHeaderBytes");
  }
}

ShardHeader decode_header(const char* data, std::size_t size,
                          const std::string& context) {
  if (size < kHeaderBytes) {
    throw TraceFormatError(context + ": file shorter than a shard header (" +
                           std::to_string(size) + " bytes)");
  }
  ByteCursor cursor(data, kHeaderBytes, context);
  std::array<char, 4> magic{};
  cursor.bytes(magic.data(), magic.size());
  if (magic != kShardMagic) {
    throw TraceFormatError(context + ": bad magic (not a lina::trace shard)");
  }
  ShardHeader header;
  header.version = cursor.u16();
  if (header.version != kFormatVersion) {
    throw TraceFormatError(context + ": unsupported format version " +
                           std::to_string(header.version) + " (this build " +
                           "reads version " + std::to_string(kFormatVersion) +
                           ")");
  }
  const std::uint16_t endian = cursor.u16();
  if (endian != kEndianMarker) {
    throw TraceFormatError(context +
                           ": endianness marker mismatch (shard written on "
                           "an incompatible-byte-order host?)");
  }
  header.seed = cursor.u64();
  header.shard_index = cursor.u32();
  header.shard_count = cursor.u32();
  header.first_user = cursor.u32();
  header.user_count = cursor.u32();
  header.day_count = cursor.u32();
  (void)cursor.u32();  // reserved
  header.visit_count = cursor.u64();
  header.event_count = cursor.u64();
  header.events_offset = cursor.u64();
  if (header.events_offset < kHeaderBytes ||
      header.events_offset + kFooterBytes > size) {
    throw TraceFormatError(context + ": event-section offset " +
                           std::to_string(header.events_offset) +
                           " out of range for a " + std::to_string(size) +
                           "-byte file");
  }
  return header;
}

}  // namespace lina::trace
