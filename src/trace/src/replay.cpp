#include "lina/trace/replay.hpp"

#include "lina/exec/parallel.hpp"
#include "lina/prof/prof.hpp"

namespace lina::trace {

core::ExtentOfMobility analyze_extent_streamed(const ShardSet& set,
                                               std::size_t batch_users) {
  DeviceTraceStream stream(set);
  core::ExtentAccumulator accumulator;
  while (!stream.done()) {
    const std::vector<mobility::DeviceTrace> batch =
        stream.next_batch(batch_users);
    accumulator.add(std::span<const mobility::DeviceTrace>(batch));
  }
  return std::move(accumulator.result());
}

core::IndirectionStretchResult evaluate_indirection_stretch_streamed(
    const ShardSet& set, const core::LatencyModel& model, double coverage,
    stats::Rng& rng, std::size_t batch_users) {
  DeviceTraceStream stream(set);
  core::IndirectionStretchAccumulator accumulator(model, coverage, rng);
  while (!stream.done()) {
    const std::vector<mobility::DeviceTrace> batch =
        stream.next_batch(batch_users);
    accumulator.accumulate(batch);
  }
  return std::move(accumulator.result());
}

std::vector<core::RouterUpdateStats> evaluate_device_update_cost_streamed(
    const core::DeviceUpdateCostEvaluator& evaluator, const ShardSet& set,
    std::size_t batch_users) {
  DeviceTraceStream stream(set);
  std::vector<core::RouterUpdateStats> tallies;
  while (!stream.done()) {
    const std::vector<mobility::DeviceTrace> batch =
        stream.next_batch(batch_users);
    evaluator.accumulate(batch, tallies);
  }
  return tallies;
}

std::vector<sim::MobilityStep> session_schedule_from_trace(
    const mobility::DeviceTrace& trace, double hours) {
  std::vector<sim::MobilityStep> schedule;
  topology::AsId last = static_cast<topology::AsId>(-1);
  for (const mobility::DeviceVisit& visit : trace.visits()) {
    if (visit.start_hour > hours) break;
    if (visit.as == last) continue;
    schedule.push_back({visit.start_hour * 1000.0, visit.as});
    last = visit.as;
  }
  if (schedule.empty() || schedule.front().time_ms != 0.0) {
    schedule.insert(schedule.begin(), {0.0, trace.visits().front().as});
  }
  return schedule;
}

std::vector<sim::SessionStats> simulate_sessions_streamed(
    const sim::ForwardingFabric& fabric, sim::SimArchitecture architecture,
    const sim::SessionConfig& base, double hours, const ShardSet& set,
    std::size_t batch_users) {
  PROF_SPAN("lina.trace.replay_sessions");
  DeviceTraceStream stream(set);
  std::vector<sim::SessionStats> all;
  while (!stream.done()) {
    const std::vector<mobility::DeviceTrace> batch =
        stream.next_batch(batch_users);
    std::vector<sim::SessionStats> stats =
        exec::parallel_map(batch.size(), [&](std::size_t u) {
          sim::SessionConfig config = base;
          config.duration_ms = hours * 1000.0;
          config.schedule = session_schedule_from_trace(batch[u], hours);
          return sim::simulate_session(fabric, architecture, config);
        });
    for (sim::SessionStats& s : stats) all.push_back(std::move(s));
  }
  return all;
}

}  // namespace lina::trace
