#include "lina/trace/writer.hpp"

#include <algorithm>
#include <fstream>

#include "lina/obs/metrics.hpp"

namespace lina::trace {

TraceWriter::TraceWriter(std::filesystem::path file, ShardMeta meta)
    : file_(std::move(file)), meta_(meta), next_user_(meta.first_user) {}

TraceWriter::~TraceWriter() {
  if (!finished_) {
    std::error_code ec;
    std::filesystem::remove(file_, ec);  // never existed unless finish() ran
  }
}

void TraceWriter::append(const mobility::DeviceTrace& trace) {
  if (finished_) {
    throw std::logic_error("TraceWriter::append after finish()");
  }
  if (appended_ == meta_.user_count) {
    throw std::invalid_argument(
        "TraceWriter::append: shard already holds its " +
        std::to_string(meta_.user_count) + " users");
  }
  if (trace.user_id() != next_user_) {
    throw std::invalid_argument(
        "TraceWriter::append: expected user " + std::to_string(next_user_) +
        ", got " + std::to_string(trace.user_id()) +
        " (shards store contiguous ascending user-id ranges)");
  }
  if (trace.day_count() != meta_.day_count) {
    throw std::invalid_argument(
        "TraceWriter::append: trace spans " +
        std::to_string(trace.day_count()) + " days, shard is declared for " +
        std::to_string(meta_.day_count));
  }
  const auto visits = trace.visits();
  if (visits.empty()) {
    throw std::invalid_argument("TraceWriter::append: empty trace for user " +
                                std::to_string(trace.user_id()));
  }

  // Timestamps delta-encode when the trace is exactly contiguous (the
  // generator's accumulation makes it so); otherwise starts are stored
  // verbatim so the round trip stays bit-exact for any legal DeviceTrace.
  bool contiguous = visits.front().start_hour == 0.0;
  for (std::size_t i = 1; contiguous && i < visits.size(); ++i) {
    contiguous = visits[i].start_hour ==
                 visits[i - 1].start_hour + visits[i - 1].duration_hours;
  }

  put_varint(blocks_, trace.user_id());
  put_varint(blocks_, visits.size());
  put_u8(blocks_, contiguous ? 0 : kBlockExplicitStarts);
  put_f64(blocks_, visits.front().start_hour);
  for (const mobility::DeviceVisit& v : visits) {
    put_f64(blocks_, v.duration_hours);
  }
  if (!contiguous) {
    for (const mobility::DeviceVisit& v : visits) {
      put_f64(blocks_, v.start_hour);
    }
  }
  std::uint32_t previous_address = 0;
  for (const mobility::DeviceVisit& v : visits) {
    const std::uint32_t value = v.address.value();
    put_varint(blocks_, zigzag_encode(static_cast<std::int64_t>(value) -
                                      static_cast<std::int64_t>(
                                          previous_address)));
    previous_address = value;
  }
  for (const mobility::DeviceVisit& v : visits) {
    // An announced prefix is its address under the mask, so one length
    // byte reconstructs it. Anything else is outside the format.
    const net::Prefix rebuilt(v.address, v.prefix.length());
    if (rebuilt != v.prefix) {
      throw std::invalid_argument(
          "TraceWriter::append: visit prefix " + v.prefix.to_string() +
          " does not contain its address " + v.address.to_string());
    }
    put_u8(blocks_, static_cast<std::uint8_t>(v.prefix.length()));
  }
  std::int64_t previous_as = 0;
  for (const mobility::DeviceVisit& v : visits) {
    put_varint(blocks_, zigzag_encode(static_cast<std::int64_t>(v.as) -
                                      previous_as));
    previous_as = static_cast<std::int64_t>(v.as);
  }
  for (std::size_t i = 0; i < visits.size(); i += 8) {
    std::uint8_t bits = 0;
    for (std::size_t b = 0; b < 8 && i + b < visits.size(); ++b) {
      if (visits[i + b].cellular) bits |= static_cast<std::uint8_t>(1u << b);
    }
    put_u8(blocks_, bits);
  }

  for (std::size_t i = 0; i < visits.size(); ++i) {
    const mobility::DeviceVisit& v = visits[i];
    events_.push_back(TraceEvent{v.start_hour, trace.user_id(), v.address,
                                 v.prefix, v.as, v.cellular, i == 0});
  }

  visit_count_ += visits.size();
  ++appended_;
  ++next_user_;
}

TraceWriter::Totals TraceWriter::finish() {
  if (finished_) {
    throw std::logic_error("TraceWriter::finish called twice");
  }
  if (appended_ != meta_.user_count) {
    throw std::invalid_argument(
        "TraceWriter::finish: shard declared " +
        std::to_string(meta_.user_count) + " users but got " +
        std::to_string(appended_));
  }

  // The merged stream's total order; ties are impossible (strictly
  // increasing start hours per user, one user id per trace).
  std::sort(events_.begin(), events_.end(), event_precedes);

  std::vector<char> event_bytes;
  event_bytes.reserve(events_.size() * 18);
  std::int64_t previous_user = 0;
  for (const TraceEvent& e : events_) {
    put_f64(event_bytes, e.hour);
    put_varint(event_bytes, zigzag_encode(static_cast<std::int64_t>(e.user) -
                                          previous_user));
    previous_user = static_cast<std::int64_t>(e.user);
    put_varint(event_bytes, e.address.value());
    put_u8(event_bytes, static_cast<std::uint8_t>(e.prefix.length()));
    put_varint(event_bytes, e.as);
    put_u8(event_bytes, static_cast<std::uint8_t>((e.cellular ? 0x01 : 0) |
                                                  (e.initial ? 0x02 : 0)));
  }

  ShardHeader header;
  header.seed = meta_.seed;
  header.shard_index = meta_.shard_index;
  header.shard_count = meta_.shard_count;
  header.first_user = meta_.first_user;
  header.user_count = meta_.user_count;
  header.day_count = meta_.day_count;
  header.visit_count = visit_count_;
  header.event_count = events_.size();
  header.events_offset = kHeaderBytes + blocks_.size();

  std::vector<char> image;
  image.reserve(kHeaderBytes + blocks_.size() + event_bytes.size() +
                kFooterBytes);
  encode_header(image, header);
  image.insert(image.end(), blocks_.begin(), blocks_.end());
  image.insert(image.end(), event_bytes.begin(), event_bytes.end());
  const std::uint32_t crc = crc32(0, image.data(), image.size());
  image.insert(image.end(), kFooterMagic.begin(), kFooterMagic.end());
  put_u32(image, crc);
  put_u64(image, image.size() + 8);  // total file size, footer included

  {
    std::ofstream out(file_, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(image.data(),
                           static_cast<std::streamsize>(image.size()))) {
      std::error_code ec;
      std::filesystem::remove(file_, ec);
      throw TraceFormatError(file_.string() + ": shard write failed");
    }
  }
  finished_ = true;

  obs::metric::trace_shards_written().add(1);
  obs::metric::trace_bytes_written().add(image.size());
  obs::metric::trace_visits_written().add(visit_count_);
  obs::metric::trace_events_written().add(events_.size());
  return Totals{image.size(), visit_count_, events_.size()};
}

}  // namespace lina::trace
