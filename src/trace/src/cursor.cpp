#include "lina/trace/cursor.hpp"

#include <utility>

#include "lina/obs/metrics.hpp"
#include "lina/prof/prof.hpp"

namespace lina::trace {

TraceCursor::TraceCursor(const ShardSet& set,
                         std::size_t buffer_bytes_per_shard) {
  PROF_SPAN("lina.trace.cursor_open");
  streams_.reserve(set.shards().size());
  heap_.reserve(set.shards().size());
  for (const ShardInfo& shard : set.shards()) {
    streams_.emplace_back(shard, buffer_bytes_per_shard);
    push_head(streams_.size() - 1);
  }
  obs::metric::trace_merge_heap_depth().set(
      static_cast<std::int64_t>(heap_.size()));
}

void TraceCursor::push_head(std::size_t shard) {
  TraceEvent event;
  if (!streams_[shard].next(event)) return;
  heap_.push_back(Head{event, shard});
  sift_up(heap_.size() - 1);
}

void TraceCursor::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!event_precedes(heap_[i].event, heap_[parent].event)) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void TraceCursor::sift_down(std::size_t i) {
  while (true) {
    std::size_t smallest = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < heap_.size() &&
        event_precedes(heap_[left].event, heap_[smallest].event)) {
      smallest = left;
    }
    if (right < heap_.size() &&
        event_precedes(heap_[right].event, heap_[smallest].event)) {
      smallest = right;
    }
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

bool TraceCursor::next(TraceEvent& out) {
  if (heap_.empty()) return false;
  out = heap_.front().event;
  const std::size_t shard = heap_.front().shard;

  if (replayed_ > 0 && event_precedes(out, last_)) {
    throw TraceFormatError(
        "TraceCursor: shard " +
        std::to_string(streams_[shard].header().shard_index) +
        " emitted an event out of (hour, user) order — corrupt or "
        "mis-sorted event section");
  }
  last_ = out;

  // Replace the popped head with that shard's next event (or shrink).
  TraceEvent refill;
  if (streams_[shard].next(refill)) {
    heap_.front() = Head{refill, shard};
    sift_down(0);
  } else {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    obs::metric::trace_merge_heap_depth().set(
        static_cast<std::int64_t>(heap_.size()));
  }
  ++replayed_;
  obs::metric::trace_cursor_events().add(1);
  return true;
}

}  // namespace lina::trace
