#pragma once

// On-disk layout of the lina::trace sharded binary device-trace store
// (DESIGN.md §4d).
//
// A trace set is a directory of shard files, each covering a contiguous
// user-id range. Every shard is
//
//     [ ShardHeader | user blocks | event section | ShardFooter ]
//
// with all multi-byte integers little-endian on disk regardless of host
// byte order (the header carries an endianness marker so a big-endian
// writer bug cannot masquerade as data). Doubles are stored as the
// little-endian bytes of their IEEE-754 bit pattern, so replay is
// bit-exact.
//
// User blocks are columnar: per user, a small block header followed by one
// column per field (durations, address deltas, prefix lengths, AS deltas,
// cellular bitmap). Timestamps are delta-encoded — visits are contiguous,
// so only the first start hour and the duration column are stored and
// start hours are rebuilt by the exact same floating-point accumulation
// the generator performed (bit-identical; a flag covers the rare
// not-exactly-contiguous trace by storing explicit starts). IP addresses
// and AS ids are zigzag-varint deltas; prefixes compress to one length
// byte because an announced prefix is its address under the mask.
//
// The event section repeats every attachment (visit start) as a flat
// record stream sorted by (hour, user id) — the k-way-merge unit of
// TraceCursor. The footer carries a CRC32 over everything before it, so
// truncation and corruption surface as a clear TraceFormatError instead
// of garbage statistics.

#include <array>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "lina/net/ipv4.hpp"
#include "lina/topology/as_graph.hpp"

namespace lina::trace {

/// Any structural problem with a shard file: bad magic, unsupported
/// version, truncation, CRC mismatch, out-of-range counts. The message
/// always names the file and the check that failed.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::array<char, 4> kShardMagic = {'L', 'T', 'R', 'C'};
inline constexpr std::array<char, 4> kFooterMagic = {'L', 'T', 'R', 'E'};
inline constexpr std::uint16_t kFormatVersion = 1;
/// Written as a u16; a same-width byte-swapped read yields 0xFF00 and is
/// rejected with an endianness-specific error message.
inline constexpr std::uint16_t kEndianMarker = 0x00FF;

/// Fixed-size (64-byte) shard header.
struct ShardHeader {
  std::uint16_t version = kFormatVersion;
  std::uint64_t seed = 0;        // workload seed the shard was drawn from
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  std::uint32_t first_user = 0;  // lowest user id in the shard
  std::uint32_t user_count = 0;  // users stored in the shard
  std::uint32_t day_count = 0;   // trace length shared by every user
  std::uint64_t visit_count = 0;   // total visits across the shard's users
  std::uint64_t event_count = 0;   // records in the event section
  std::uint64_t events_offset = 0; // byte offset of the event section
};

inline constexpr std::size_t kHeaderBytes = 64;
inline constexpr std::size_t kFooterBytes = 16;

/// Per-user block flag: starts stored explicitly because the trace was not
/// exactly contiguous (start[i] != start[i-1] + duration[i-1] bitwise).
inline constexpr std::uint8_t kBlockExplicitStarts = 0x01;

/// One attachment record of the merged event stream: user `user` attached
/// to `address` (inside `prefix`, announced by `as`) at `hour` and stayed
/// until its next event.
struct TraceEvent {
  double hour = 0.0;
  std::uint32_t user = 0;
  net::Ipv4Address address;
  net::Prefix prefix;
  topology::AsId as = 0;
  bool cellular = false;
  bool initial = false;  // the user's first attachment (hour 0)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Strict total order of the merged stream: (hour, user). Unique per
/// event — a user's visit starts are strictly increasing and user ids are
/// disjoint across shards — so replay order is independent of sharding.
inline bool event_precedes(const TraceEvent& a, const TraceEvent& b) {
  if (a.hour != b.hour) return a.hour < b.hour;
  return a.user < b.user;
}

// --- primitive encoding ---------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), the checksum of the
/// shard footer.
[[nodiscard]] std::uint32_t crc32(std::uint32_t crc, const void* data,
                                  std::size_t size);

inline constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Append helpers for the writer's in-memory shard image.
void put_u8(std::vector<char>& out, std::uint8_t v);
void put_u16(std::vector<char>& out, std::uint16_t v);
void put_u32(std::vector<char>& out, std::uint32_t v);
void put_u64(std::vector<char>& out, std::uint64_t v);
void put_f64(std::vector<char>& out, double v);
/// LEB128 (7 bits per byte, most-significant-bit continuation).
void put_varint(std::vector<char>& out, std::uint64_t v);

/// Bounded sequential decoder over a byte range; every read is
/// bounds-checked and overruns throw TraceFormatError naming `context`.
class ByteCursor {
 public:
  ByteCursor(const char* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - offset_; }
  [[nodiscard]] bool done() const { return offset_ == size_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::uint64_t varint();
  void bytes(void* into, std::size_t n);

 private:
  [[noreturn]] void overrun(const char* what) const;

  const char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  std::string context_;
};

/// Serializes the header into exactly kHeaderBytes.
void encode_header(std::vector<char>& out, const ShardHeader& header);

/// Parses and validates a header (magic, version, endianness, size
/// sanity). `context` names the file for error messages.
[[nodiscard]] ShardHeader decode_header(const char* data, std::size_t size,
                                        const std::string& context);

}  // namespace lina::trace
