#pragma once

#include <vector>

#include "lina/trace/reader.hpp"

namespace lina::trace {

/// Replays a whole trace set's attachment events in global (hour, user)
/// order with a bounded k-way merge: one buffered EventReader plus one
/// head event per shard, so memory is O(shards × read buffer) no matter
/// how many users the set holds. Because the (hour, user) order is a
/// strict total order over the set, the merged stream is bit-identical
/// for any sharding of the same workload.
class TraceCursor {
 public:
  /// The shard set must outlive nothing — infos are copied; files are
  /// reopened here with small buffers.
  explicit TraceCursor(const ShardSet& set,
                       std::size_t buffer_bytes_per_shard = 256 * 1024);

  /// The next event in global time order; false when all shards are
  /// exhausted. Throws TraceFormatError if a shard's stream violates the
  /// sort order (corruption the CRC caught too late, or a writer bug).
  [[nodiscard]] bool next(TraceEvent& out);

  /// Current merge-heap population (open shard streams).
  [[nodiscard]] std::size_t heap_depth() const { return heap_.size(); }

  [[nodiscard]] std::uint64_t events_replayed() const { return replayed_; }

 private:
  struct Head {
    TraceEvent event;
    std::size_t shard;  // index into streams_
  };

  void push_head(std::size_t shard);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<EventReader> streams_;
  std::vector<Head> heap_;  // binary min-heap under event_precedes
  std::uint64_t replayed_ = 0;
  bool order_checked_ = true;
  TraceEvent last_;
};

}  // namespace lina::trace
