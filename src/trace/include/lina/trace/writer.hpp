#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "lina/mobility/device_trace.hpp"
#include "lina/trace/format.hpp"

namespace lina::trace {

/// Identity of one shard inside a trace set; becomes the shard header.
struct ShardMeta {
  std::uint64_t seed = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::uint32_t first_user = 0;
  std::uint32_t user_count = 0;  // exact number of append() calls expected
  std::uint32_t day_count = 0;
};

/// Writes one shard file. Traces must arrive in ascending user-id order,
/// user ids must lie in [first_user, first_user + user_count), and exactly
/// user_count traces must be appended before finish().
///
/// The shard is staged in memory — user blocks stream into the image as
/// they arrive; the event section is buffered so it can be sorted by
/// (hour, user) — then written in one buffered sequential pass with the
/// CRC32 footer. Peak memory is therefore one shard, which is what bounds
/// the out-of-core pipeline: pick users_per_shard to fit your budget
/// (StreamingWorkload's default keeps a shard in the tens of megabytes).
class TraceWriter {
 public:
  struct Totals {
    std::uint64_t bytes = 0;
    std::uint64_t visits = 0;
    std::uint64_t events = 0;
  };

  TraceWriter(std::filesystem::path file, ShardMeta meta);
  ~TraceWriter();  // abandons (removes) the file if finish() was not called

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Encodes one user's trace (its day_count must match the shard's).
  void append(const mobility::DeviceTrace& trace);

  /// Sorts the event section, writes the file, and returns byte/record
  /// totals. Throws TraceFormatError on I/O failure; the partial file is
  /// removed so a crashed write never leaves a truncated shard behind.
  Totals finish();

 private:
  std::filesystem::path file_;
  ShardMeta meta_;
  std::vector<char> blocks_;        // encoded user blocks
  std::vector<TraceEvent> events_;  // buffered for the (hour, user) sort
  std::uint64_t visit_count_ = 0;
  std::uint32_t appended_ = 0;
  std::uint32_t next_user_ = 0;
  bool finished_ = false;
};

}  // namespace lina::trace
