#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "lina/mobility/device_workload.hpp"
#include "lina/trace/reader.hpp"
#include "lina/trace/writer.hpp"

namespace lina::trace {

/// Knobs of the generate-to-shards pipeline. users_per_shard is the
/// memory-vs-parallelism dial: each in-flight shard stages its image and
/// event buffer in RAM (a few tens of MB at the default), and shards fan
/// out across the lina::exec pool, so peak memory is threads × one shard.
struct StreamingWorkloadConfig {
  std::size_t users_per_shard = 8192;
  /// Re-validate every shard (full CRC scan) right after writing.
  bool verify_after_write = false;
};

/// Streams a DeviceWorkloadGenerator's population straight to a shard
/// directory instead of a resident vector. Each shard covers a contiguous
/// user-id range and is generated from the users' own seed-labelled RNG
/// substreams, so the byte-identical shard set comes out at any thread
/// count — and the same workload resharded differently still replays the
/// same event stream (TraceCursor's order is a strict total order).
class StreamingWorkload {
 public:
  StreamingWorkload(const mobility::DeviceWorkloadGenerator& generator,
                    StreamingWorkloadConfig config = {})
      : generator_(generator), config_(config) {}

  /// Generates every shard into `dir` (created if missing; existing .ltrc
  /// files are an error — refuse to mix trace sets) and returns the
  /// validated set.
  ShardSet write_shards(const std::filesystem::path& dir) const;

  [[nodiscard]] const StreamingWorkloadConfig& config() const {
    return config_;
  }

 private:
  const mobility::DeviceWorkloadGenerator& generator_;
  StreamingWorkloadConfig config_;
};

/// Batched, bounded-memory replay of a trace set in ascending user-id
/// order: at most one decoded shard plus one decoded batch is resident.
/// Feeding batches to the core accumulators in this order reproduces the
/// in-memory evaluators bit-for-bit.
class DeviceTraceStream {
 public:
  explicit DeviceTraceStream(const ShardSet& set);

  /// Up to `max_users` traces, in user order; empty when exhausted.
  [[nodiscard]] std::vector<mobility::DeviceTrace> next_batch(
      std::size_t max_users);

  [[nodiscard]] bool done() const;

  /// Global index of the next user to be returned (== number returned so
  /// far) — the `rng.split(t)` index for determinism-preserving sampling.
  [[nodiscard]] std::size_t next_index() const { return next_index_; }

 private:
  const ShardSet* set_;
  std::size_t shard_ = 0;
  std::unique_ptr<TraceReader> reader_;
  std::size_t next_index_ = 0;
};

/// The canonical shard-file name of shard `index` ("shard-00042.ltrc").
[[nodiscard]] std::filesystem::path shard_file_name(std::uint32_t index);

}  // namespace lina::trace
