#pragma once

// Streamed counterparts of the resident-vector evaluation pipelines: each
// driver pulls bounded user batches out of a shard set and feeds the core
// accumulators (or the session simulators) in global user order, so every
// number is bit-identical to the in-memory path while peak memory is one
// decoded shard plus one batch.

#include <cstdint>
#include <vector>

#include "lina/core/extent.hpp"
#include "lina/core/latency_model.hpp"
#include "lina/core/update_cost.hpp"
#include "lina/sim/session.hpp"
#include "lina/trace/streaming.hpp"

namespace lina::trace {

inline constexpr std::size_t kDefaultBatchUsers = 2048;

/// Streamed core::analyze_extent (Figures 6, 7, 9).
[[nodiscard]] core::ExtentOfMobility analyze_extent_streamed(
    const ShardSet& set, std::size_t batch_users = kDefaultBatchUsers);

/// Streamed core::evaluate_indirection_stretch (Figure 10). Trace t still
/// draws its coverage coins from rng.split(t) with t the global user
/// index, so the batch size does not change the sampled pair set.
[[nodiscard]] core::IndirectionStretchResult
evaluate_indirection_stretch_streamed(
    const ShardSet& set, const core::LatencyModel& model, double coverage,
    stats::Rng& rng, std::size_t batch_users = kDefaultBatchUsers);

/// Streamed DeviceUpdateCostEvaluator::evaluate (Figure 8).
[[nodiscard]] std::vector<core::RouterUpdateStats>
evaluate_device_update_cost_streamed(
    const core::DeviceUpdateCostEvaluator& evaluator, const ShardSet& set,
    std::size_t batch_users = kDefaultBatchUsers);

/// Converts a device trace's first `hours` hours into the AS-level
/// mobility schedule of a simulated session (1 simulated second per trace
/// hour), collapsing consecutive same-AS visits.
[[nodiscard]] std::vector<sim::MobilityStep> session_schedule_from_trace(
    const mobility::DeviceTrace& trace, double hours);

/// Runs one session per streamed user under `architecture`: `base` supplies
/// every knob except the schedule and duration, which come from each user's
/// trace (first `hours` hours via session_schedule_from_trace). Sessions
/// within a batch fan out across the lina::exec pool and land back in user
/// order, so the returned stats match the resident-vector loop
/// bit-for-bit.
[[nodiscard]] std::vector<sim::SessionStats> simulate_sessions_streamed(
    const sim::ForwardingFabric& fabric, sim::SimArchitecture architecture,
    const sim::SessionConfig& base, double hours, const ShardSet& set,
    std::size_t batch_users = 64);

}  // namespace lina::trace
