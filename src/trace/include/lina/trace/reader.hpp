#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <vector>

#include "lina/mobility/device_trace.hpp"
#include "lina/trace/format.hpp"

namespace lina::trace {

/// One shard on disk: path plus its validated header.
struct ShardInfo {
  std::filesystem::path path;
  ShardHeader header;
};

/// How much of a shard file to check before trusting it.
enum class Validate : std::uint8_t {
  kHeader,  // header + footer magic and size bookkeeping (cheap)
  kCrc,     // kHeader plus a full sequential CRC32 scan
};

/// Validates one shard file and returns its header. Throws
/// TraceFormatError naming the file and the failed check (bad magic,
/// version/endianness mismatch, truncation, size bookkeeping, CRC).
[[nodiscard]] ShardHeader validate_shard(const std::filesystem::path& path,
                                         Validate mode = Validate::kCrc);

/// A complete trace set: every `*.ltrc` shard of a directory, sorted by
/// shard index and validated as one consistent set (same seed, day count
/// and shard count everywhere; shard indexes 0..k-1 each present once;
/// user-id ranges contiguous and ascending). Throws TraceFormatError on
/// any inconsistency, and on an empty or missing directory.
class ShardSet {
 public:
  [[nodiscard]] static ShardSet discover(const std::filesystem::path& dir,
                                         Validate mode = Validate::kCrc);

  [[nodiscard]] const std::vector<ShardInfo>& shards() const {
    return shards_;
  }
  [[nodiscard]] std::uint32_t user_count() const;
  [[nodiscard]] std::uint64_t visit_count() const;
  [[nodiscard]] std::uint64_t event_count() const;
  [[nodiscard]] std::uint64_t seed() const;
  [[nodiscard]] std::uint32_t day_count() const;

 private:
  std::vector<ShardInfo> shards_;
};

/// Sequential per-user decoder of one shard. Loads the shard image in one
/// buffered read (memory = one shard, the same users_per_shard-sized bound
/// the writer obeys) and yields DeviceTraces in ascending user-id order.
class TraceReader {
 public:
  explicit TraceReader(const ShardInfo& shard);

  [[nodiscard]] const ShardHeader& header() const { return shard_.header; }

  /// The next user's trace, or nullopt when the shard is exhausted (after
  /// which the user-block section must be fully consumed — leftover bytes
  /// are a format error).
  [[nodiscard]] std::optional<mobility::DeviceTrace> next();

 private:
  ShardInfo shard_;
  std::vector<char> image_;
  std::unique_ptr<ByteCursor> cursor_;  // over the user-block section
  std::uint32_t decoded_ = 0;
};

/// Streaming decoder of one shard's (hour, user)-sorted event section with
/// a fixed-size read buffer — the bounded per-shard state of TraceCursor's
/// k-way merge (the whole merge holds k buffers, never a decoded shard).
class EventReader {
 public:
  explicit EventReader(const ShardInfo& shard,
                       std::size_t buffer_bytes = 256 * 1024);

  [[nodiscard]] const ShardHeader& header() const { return shard_.header; }

  /// Decodes the next event into `out`; false when exhausted.
  [[nodiscard]] bool next(TraceEvent& out);

 private:
  void refill();

  ShardInfo shard_;
  std::ifstream file_;
  std::vector<char> buffer_;
  std::size_t buffer_pos_ = 0;   // consumed bytes of buffer_
  std::size_t buffer_len_ = 0;   // valid bytes in buffer_
  std::uint64_t section_left_;   // unread bytes of the event section
  std::uint64_t decoded_ = 0;
  std::int64_t previous_user_ = 0;
};

}  // namespace lina::trace
