#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace lina::net {

/// An IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("192.0.2.1"); throws std::invalid_argument
  /// on malformed input.
  static Ipv4Address parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// The i-th most significant bit (i in [0, 32)).
  [[nodiscard]] constexpr bool bit(unsigned i) const {
    return ((value_ >> (31u - i)) & 1u) != 0;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix: an address with the low (32 - length) bits zeroed.
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Constructs from an address and length (0..32); host bits are masked off
  /// so equal prefixes always compare equal. Throws on length > 32.
  Prefix(Ipv4Address addr, unsigned length);

  /// Parses "a.b.c.d/len"; throws std::invalid_argument on malformed input.
  static Prefix parse(std::string_view text);

  /// The /32 prefix for a single address.
  static Prefix host(Ipv4Address addr) { return Prefix(addr, 32); }

  [[nodiscard]] Ipv4Address network() const { return network_; }
  [[nodiscard]] unsigned length() const { return length_; }

  /// True iff `addr` falls inside this prefix.
  [[nodiscard]] bool contains(Ipv4Address addr) const;

  /// True iff `other` is equal to or nested inside this prefix.
  [[nodiscard]] bool contains(const Prefix& other) const;

  /// The immediate left/right halves of this prefix (length + 1); used by
  /// generators carving address space. Throws if length() == 32.
  [[nodiscard]] Prefix left_half() const;
  [[nodiscard]] Prefix right_half() const;

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Address network_;
  unsigned length_ = 0;
};

/// Bit mask with the top `length` bits set.
[[nodiscard]] constexpr std::uint32_t prefix_mask(unsigned length) {
  return length == 0 ? 0u
                     : ~std::uint32_t{0} << (32u - length);
}

}  // namespace lina::net

template <>
struct std::hash<lina::net::Ipv4Address> {
  std::size_t operator()(const lina::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<lina::net::Prefix> {
  std::size_t operator()(const lina::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.network().value()} << 6) | p.length());
  }
};
