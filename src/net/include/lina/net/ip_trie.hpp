#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "lina/net/frozen_ip_trie.hpp"
#include "lina/net/ipv4.hpp"
#include "lina/obs/metrics.hpp"

namespace lina::net {

/// A path-compressed (Patricia-style) binary trie keyed by IP prefixes with
/// longest-prefix-match lookups — the data structure underlying every FIB
/// in the library.
///
/// Nodes live in a contiguous `std::vector` arena addressed by 32-bit
/// indices: no per-node heap allocation, no pointer chasing through
/// malloc-scattered memory. Each node stores its full prefix (`key`/`len`),
/// so chains of single-child bit nodes never exist — lookups visit only
/// branching or valued nodes (at most 33 on any root-to-leaf path instead
/// of one node per bit). Erase prunes value-less chains back into a
/// free-list, so memory stays bounded under mobility churn.
///
/// Structural invariant: every non-root node either holds a value or has
/// exactly two children (value-less unary nodes are spliced out), which
/// bounds live nodes by 2·size() + 1.
///
/// T is the payload stored per prefix (an output port, a next hop, ...).
/// Operations:
///  - insert / assign a value for an exact prefix,
///  - longest-prefix match for an address,
///  - exact-match lookup and erase,
///  - in-order visitation of all stored entries,
///  - `lpm_compressed_size()`: the number of entries that survive
///    longest-prefix-match subsumption (an entry equal to its nearest stored
///    ancestor is redundant) — the quantity behind the paper's
///    aggregateability metric (§3.3.2) applied to IP tables. Maintained
///    incrementally on every mutation (ancestor/descendant delta at the
///    mutation point), so reading it is O(1),
///  - `freeze()`: an immutable FrozenIpTrie snapshot with batched
///    prefetched lookups for the read-mostly evaluation phases.
template <typename T>
class IpTrie {
 public:
  IpTrie() { arena_.emplace_back(); }

  IpTrie(const IpTrie&) = delete;
  IpTrie& operator=(const IpTrie&) = delete;
  IpTrie(IpTrie&&) noexcept = default;
  IpTrie& operator=(IpTrie&&) noexcept = default;

  /// Inserts or overwrites the value at `prefix`. Returns true if a new
  /// entry was created, false if an existing entry was overwritten.
  bool insert(const Prefix& prefix, T value) {
    const std::uint32_t idx = find_or_create(prefix);
    const bool created = !arena_[idx].value.has_value();
    assign_value(idx, std::move(value));
    if (created) ++size_;
    obs::metric::ip_trie_inserts().add();
    if (!created) obs::metric::ip_trie_displacements().add();
    check_compressed_invariant();
    return created;
  }

  /// Longest-prefix match: the most specific stored entry containing `addr`.
  [[nodiscard]] std::optional<std::pair<Prefix, T>> lookup(
      Ipv4Address addr) const {
    const std::uint32_t a = addr.value();
    std::uint32_t best = kNil;
    std::uint32_t idx = 0;
    std::uint64_t visited = 0;
    while (idx != kNil) {
      const Node& n = arena_[idx];
      if (((a ^ n.key) & prefix_mask(n.len)) != 0) break;
      ++visited;
      if (n.value.has_value()) best = idx;
      if (n.len == 32) break;
      idx = n.child[bit_at(a, n.len)];
    }
    obs::metric::ip_trie_lpm_lookups().add();
    obs::metric::ip_trie_lpm_node_visits().add(visited);
    if (best == kNil) return std::nullopt;
    // The matched prefix is derived once from the winning node — never
    // materialised per descent step.
    const Node& b = arena_[best];
    return std::make_pair(Prefix(Ipv4Address(b.key), b.len), *b.value);
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* exact(const Prefix& prefix) const {
    const std::uint32_t idx = descend(prefix);
    if (idx == kNil || !arena_[idx].value.has_value()) return nullptr;
    return &*arena_[idx].value;
  }

  [[nodiscard]] T* exact(const Prefix& prefix) {
    return const_cast<T*>(std::as_const(*this).exact(prefix));
  }

  /// Removes the entry at `prefix` if present; returns whether it existed.
  /// Value-less chains left behind are pruned into the free-list so the
  /// arena stays bounded under insert/erase churn.
  bool erase(const Prefix& prefix) {
    std::uint32_t stack[34];
    std::size_t depth = 0;
    const std::uint32_t idx = descend_recording(prefix, stack, depth);
    if (idx == kNil || !arena_[idx].value.has_value()) return false;
    clear_value(idx);
    --size_;
    obs::metric::ip_trie_erases().add();
    prune(stack, depth);
    check_compressed_invariant();
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Visits every stored (prefix, value) pair in trie order (shorter
  /// prefixes before their descendants, zero branch before one branch).
  void visit(const std::function<void(const Prefix&, const T&)>& fn) const {
    visit_node(0, fn);
  }

  /// Number of entries remaining after removing entries subsumed by their
  /// nearest stored ancestor (same payload, as compared by ==). O(1): the
  /// count is maintained incrementally by insert/assign/erase.
  [[nodiscard]] std::size_t lpm_compressed_size() const {
    return compressed_;
  }

  /// The O(n) recursive recount of lpm_compressed_size(), kept as the
  /// reference for the incremental counter (debug builds cross-check every
  /// mutation against it; the differential test suite does so explicitly).
  [[nodiscard]] std::size_t lpm_compressed_size_recursive() const {
    return compressed_count(0, nullptr);
  }

  void clear() {
    arena_.clear();
    arena_.emplace_back();
    free_.clear();
    size_ = 0;
    compressed_ = 0;
  }

  /// Arena occupancy: nodes currently reachable (excluding free-listed
  /// slots). At most 2·size() + 1 by the structural invariant.
  [[nodiscard]] std::size_t live_nodes() const {
    return arena_.size() - free_.size();
  }

  /// Slots parked on the erase free-list, awaiting reuse.
  [[nodiscard]] std::size_t free_nodes() const { return free_.size(); }

  /// Bytes the arena retains from the allocator (capacity, not just live
  /// nodes) — the `lina.fib.arena_bytes` telemetry source.
  [[nodiscard]] std::size_t arena_bytes() const {
    return arena_.capacity() * sizeof(Node) +
           free_.capacity() * sizeof(std::uint32_t);
  }

  /// Bytes needed for the live table alone (live nodes × node size) — the
  /// deterministic "real memory per table" figure the table-size benches
  /// report (independent of allocator growth policy).
  [[nodiscard]] std::size_t table_bytes() const {
    return live_nodes() * sizeof(Node);
  }

  /// Emits an immutable snapshot in preorder layout with batch lookups;
  /// results are bit-identical to live lookups at freeze time.
  [[nodiscard]] FrozenIpTrie<T> freeze() const {
    PROF_SPAN("lina.trie.ip_freeze");
    using FNode = typename FrozenIpTrie<T>::Node;
    std::vector<FNode> nodes;
    std::vector<T> values;
    std::vector<Prefix> prefixes;
    nodes.reserve(live_nodes());
    values.reserve(size_);
    prefixes.reserve(size_);
    freeze_node(0, nodes, values, prefixes);
    return FrozenIpTrie<T>(std::move(nodes), std::move(values),
                           std::move(prefixes));
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    std::uint32_t key = 0;                  // full prefix bits, host bits 0
    std::uint32_t child[2] = {kNil, kNil};  // arena indices
    std::uint8_t len = 0;                   // prefix length 0..32
    std::optional<T> value;
  };

  /// Bit `i` (0 = most significant) of `key`; requires i < 32.
  [[nodiscard]] static unsigned bit_at(std::uint32_t key, unsigned i) {
    return (key >> (31u - i)) & 1u;
  }

  /// Length of the common prefix of two keys (32 when equal).
  [[nodiscard]] static unsigned common_len(std::uint32_t a, std::uint32_t b) {
    return static_cast<unsigned>(std::countl_zero(a ^ b));
  }

  std::uint32_t allocate(std::uint32_t key, std::uint8_t len) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
      arena_[idx] = Node{};
    } else {
      idx = static_cast<std::uint32_t>(arena_.size());
      arena_.emplace_back();
    }
    arena_[idx].key = key;
    arena_[idx].len = len;
    return idx;
  }

  /// Exact descent; kNil if the prefix has no node.
  [[nodiscard]] std::uint32_t descend(const Prefix& prefix) const {
    const std::uint32_t key = prefix.network().value();
    const unsigned len = prefix.length();
    std::uint32_t idx = 0;
    while (true) {
      const Node& n = arena_[idx];
      if (n.len > len) return kNil;
      if (((key ^ n.key) & prefix_mask(n.len)) != 0) return kNil;
      if (n.len == len) return idx;
      const std::uint32_t c = n.child[bit_at(key, n.len)];
      if (c == kNil) return kNil;
      idx = c;
    }
  }

  /// Exact descent that records the node path (for erase pruning).
  [[nodiscard]] std::uint32_t descend_recording(const Prefix& prefix,
                                                std::uint32_t* stack,
                                                std::size_t& depth) const {
    const std::uint32_t key = prefix.network().value();
    const unsigned len = prefix.length();
    std::uint32_t idx = 0;
    while (true) {
      const Node& n = arena_[idx];
      if (n.len > len) return kNil;
      if (((key ^ n.key) & prefix_mask(n.len)) != 0) return kNil;
      stack[depth++] = idx;
      if (n.len == len) return idx;
      const std::uint32_t c = n.child[bit_at(key, n.len)];
      if (c == kNil) return kNil;
      idx = c;
    }
  }

  /// Finds the node for `prefix`, creating (leaf / proper-prefix parent /
  /// split) nodes as needed. Returns its index; never touches values.
  std::uint32_t find_or_create(const Prefix& prefix) {
    const std::uint32_t key = prefix.network().value();
    const unsigned len = prefix.length();
    std::uint32_t idx = 0;
    while (true) {
      // Invariant: arena_[idx] is a (non-strict) prefix of (key, len).
      if (arena_[idx].len == len) return idx;
      const unsigned branch = bit_at(key, arena_[idx].len);
      const std::uint32_t c = arena_[idx].child[branch];
      if (c == kNil) {
        const std::uint32_t leaf = allocate(key, static_cast<std::uint8_t>(len));
        arena_[idx].child[branch] = leaf;  // allocate() may move the arena
        return leaf;
      }
      const std::uint32_t child_key = arena_[c].key;
      const unsigned child_len = arena_[c].len;
      const unsigned cpl =
          std::min({child_len, len, common_len(child_key, key)});
      if (cpl == child_len) {  // child is a prefix of the target: descend
        idx = c;
        continue;
      }
      if (cpl == len) {
        // Target is a proper prefix of the child: interpose the target.
        const std::uint32_t mid = allocate(key, static_cast<std::uint8_t>(len));
        arena_[mid].child[bit_at(child_key, len)] = c;
        arena_[idx].child[branch] = mid;
        return mid;
      }
      // Keys diverge below both: split with a value-less branch node.
      const std::uint32_t mid =
          allocate(key & prefix_mask(cpl), static_cast<std::uint8_t>(cpl));
      const std::uint32_t leaf = allocate(key, static_cast<std::uint8_t>(len));
      arena_[mid].child[bit_at(child_key, cpl)] = c;
      arena_[mid].child[bit_at(key, cpl)] = leaf;
      arena_[idx].child[branch] = mid;
      return leaf;
    }
  }

  /// Splices value-less unary/leaf nodes out of the path recorded by
  /// descend_recording (stack[depth-1] is the erased node).
  void prune(const std::uint32_t* stack, std::size_t depth) {
    while (depth > 1) {
      const std::uint32_t idx = stack[--depth];
      Node& n = arena_[idx];
      if (n.value.has_value()) return;
      const std::uint32_t parent = stack[depth - 1];
      const unsigned branch = bit_at(n.key, arena_[parent].len);
      const bool has0 = n.child[0] != kNil;
      const bool has1 = n.child[1] != kNil;
      if (has0 && has1) return;  // still a branch node: keep
      // Unary: splice the lone child through; leaf: detach entirely.
      arena_[parent].child[branch] =
          has0 ? n.child[0] : (has1 ? n.child[1] : kNil);
      n.value.reset();
      free_.push_back(idx);
      if (has0 || has1) return;  // parent's child count unchanged
    }
  }

  // --- incremental lpm_compressed_size maintenance -----------------------

  [[nodiscard]] static std::size_t contribution(const std::optional<T>& value,
                                                const T* above) {
    if (!value.has_value()) return 0;
    return (above == nullptr || !(*above == *value)) ? 1 : 0;
  }

  /// Nearest valued strict ancestor of `idx` (nullptr if none). O(path).
  [[nodiscard]] const T* ancestor_value(std::uint32_t idx) const {
    const std::uint32_t key = arena_[idx].key;
    const T* above = nullptr;
    std::uint32_t cur = 0;
    while (cur != idx) {
      const Node& n = arena_[cur];
      if (n.value.has_value()) above = &*n.value;
      cur = n.child[bit_at(key, n.len)];
    }
    return above;
  }

  /// Sum of subsumption contributions over the valued frontier of `idx`:
  /// the valued descendants with no other valued node between them and
  /// `idx` (exactly the entries whose nearest stored ancestor is `idx`
  /// when `idx` holds a value, or `idx`'s own ancestor otherwise).
  [[nodiscard]] std::size_t frontier_contribution(std::uint32_t idx,
                                                  const T* above) const {
    std::size_t sum = 0;
    scratch_.clear();
    const Node& root = arena_[idx];
    if (root.child[0] != kNil) scratch_.push_back(root.child[0]);
    if (root.child[1] != kNil) scratch_.push_back(root.child[1]);
    while (!scratch_.empty()) {
      const std::uint32_t c = scratch_.back();
      scratch_.pop_back();
      const Node& n = arena_[c];
      if (n.value.has_value()) {
        sum += contribution(n.value, above);
        continue;  // deeper entries inherit from this node, not from idx
      }
      if (n.child[0] != kNil) scratch_.push_back(n.child[0]);
      if (n.child[1] != kNil) scratch_.push_back(n.child[1]);
    }
    return sum;
  }

  /// Applies a value write at `idx`, updating `compressed_` by the local
  /// ancestor/descendant delta.
  void assign_value(std::uint32_t idx, T value) {
    const T* above = ancestor_value(idx);
    Node& n = arena_[idx];
    const T* effective_before =
        n.value.has_value() ? &*n.value : above;
    std::size_t before = contribution(n.value, above) +
                         frontier_contribution(idx, effective_before);
    n.value = std::move(value);
    // n is still valid: frontier/ancestor walks never allocate.
    std::size_t after = contribution(arena_[idx].value, above) +
                        frontier_contribution(idx, &*arena_[idx].value);
    compressed_ += after;
    compressed_ -= before;
  }

  /// Clears the value at `idx`, updating `compressed_` likewise.
  void clear_value(std::uint32_t idx) {
    const T* above = ancestor_value(idx);
    Node& n = arena_[idx];
    const std::size_t before = contribution(n.value, above) +
                               frontier_contribution(idx, &*n.value);
    n.value.reset();
    const std::size_t after = frontier_contribution(idx, above);
    compressed_ += after;
    compressed_ -= before;
  }

  void check_compressed_invariant() const {
#ifndef NDEBUG
    assert(compressed_ == lpm_compressed_size_recursive());
#endif
  }

  // --- traversal ---------------------------------------------------------

  void visit_node(std::uint32_t idx,
                  const std::function<void(const Prefix&, const T&)>& fn)
      const {
    if (idx == kNil) return;
    const Node& n = arena_[idx];
    if (n.value.has_value()) fn(Prefix(Ipv4Address(n.key), n.len), *n.value);
    visit_node(n.child[0], fn);
    visit_node(n.child[1], fn);
  }

  [[nodiscard]] std::size_t compressed_count(std::uint32_t idx,
                                             const T* inherited) const {
    if (idx == kNil) return 0;
    const Node& n = arena_[idx];
    std::size_t count = 0;
    const T* effective = inherited;
    if (n.value.has_value()) {
      count = contribution(n.value, inherited);
      effective = &*n.value;
    }
    return count + compressed_count(n.child[0], effective) +
           compressed_count(n.child[1], effective);
  }

  /// Preorder copy into the frozen layout. Returns the new node's index.
  std::uint32_t freeze_node(std::uint32_t idx,
                            std::vector<typename FrozenIpTrie<T>::Node>& nodes,
                            std::vector<T>& values,
                            std::vector<Prefix>& prefixes) const {
    const Node& n = arena_[idx];
    const std::uint32_t self = static_cast<std::uint32_t>(nodes.size());
    nodes.emplace_back();
    nodes[self].key = n.key;
    nodes[self].len = n.len;
    if (n.value.has_value()) {
      nodes[self].value_slot = static_cast<std::uint32_t>(values.size());
      values.push_back(*n.value);
      prefixes.emplace_back(Ipv4Address(n.key), n.len);
    }
    if (n.child[0] != kNil) {
      const std::uint32_t c = freeze_node(n.child[0], nodes, values, prefixes);
      nodes[self].child0 = c;
    }
    if (n.child[1] != kNil) {
      const std::uint32_t c = freeze_node(n.child[1], nodes, values, prefixes);
      nodes[self].child1 = c;
    }
    return self;
  }

  std::vector<Node> arena_;          // [0] is the root (len 0)
  std::vector<std::uint32_t> free_;  // recycled slots from erase pruning
  std::size_t size_ = 0;
  std::size_t compressed_ = 0;  // incremental lpm_compressed_size()
  // Reused DFS stack for the frontier walks (no per-mutation allocation).
  mutable std::vector<std::uint32_t> scratch_;
};

}  // namespace lina::net
