#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "lina/net/ipv4.hpp"
#include "lina/obs/metrics.hpp"

namespace lina::net {

/// A binary trie keyed by IP prefixes supporting longest-prefix-match
/// lookups — the data structure underlying every FIB in the library.
///
/// T is the payload stored per prefix (an output port, a next hop, ...).
/// Operations:
///  - insert / assign a value for an exact prefix,
///  - longest-prefix match for an address,
///  - exact-match lookup and erase,
///  - in-order visitation of all stored entries,
///  - `lpm_compressed_size()`: the number of entries that survive
///    longest-prefix-match subsumption (an entry equal to its nearest stored
///    ancestor is redundant) — the quantity behind the paper's
///    aggregateability metric (§3.3.2) applied to IP tables.
template <typename T>
class IpTrie {
 public:
  IpTrie() = default;

  IpTrie(const IpTrie&) = delete;
  IpTrie& operator=(const IpTrie&) = delete;
  IpTrie(IpTrie&&) noexcept = default;
  IpTrie& operator=(IpTrie&&) noexcept = default;

  /// Inserts or overwrites the value at `prefix`. Returns true if a new
  /// entry was created, false if an existing entry was overwritten.
  bool insert(const Prefix& prefix, T value) {
    Node* node = descend_or_create(prefix);
    const bool created = !node->value.has_value();
    node->value = std::move(value);
    if (created) ++size_;
    obs::metric::ip_trie_inserts().add();
    if (!created) obs::metric::ip_trie_displacements().add();
    return created;
  }

  /// Longest-prefix match: the most specific stored entry containing `addr`.
  [[nodiscard]] std::optional<std::pair<Prefix, T>> lookup(
      Ipv4Address addr) const {
    const Node* best = nullptr;
    Prefix best_prefix;
    const Node* node = root_.get();
    Prefix path(Ipv4Address(0), 0);
    unsigned depth = 0;
    std::uint64_t visited = 0;
    while (node != nullptr) {
      ++visited;
      if (node->value.has_value()) {
        best = node;
        best_prefix = path;
      }
      if (depth == 32) break;
      const bool bit = addr.bit(depth);
      path = Prefix(addr, depth + 1);
      node = bit ? node->one.get() : node->zero.get();
      ++depth;
    }
    obs::metric::ip_trie_lpm_lookups().add();
    obs::metric::ip_trie_lpm_node_visits().add(visited);
    if (best == nullptr) return std::nullopt;
    return std::make_pair(best_prefix, *best->value);
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* exact(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value
                                                        : nullptr;
  }

  [[nodiscard]] T* exact(const Prefix& prefix) {
    return const_cast<T*>(std::as_const(*this).exact(prefix));
  }

  /// Removes the entry at `prefix` if present; returns whether it existed.
  /// (Interior nodes are left in place; lookups remain correct.)
  bool erase(const Prefix& prefix) {
    Node* node = const_cast<Node*>(descend(prefix));
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    obs::metric::ip_trie_erases().add();
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Visits every stored (prefix, value) pair in trie order.
  void visit(const std::function<void(const Prefix&, const T&)>& fn) const {
    visit_node(root_.get(), Prefix(Ipv4Address(0), 0), fn);
  }

  /// Number of entries remaining after removing entries subsumed by their
  /// nearest stored ancestor (same payload, as compared by ==).
  [[nodiscard]] std::size_t lpm_compressed_size() const {
    return compressed_count(root_.get(), nullptr);
  }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  const Node* descend(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (unsigned depth = 0; depth < prefix.length() && node != nullptr;
         ++depth) {
      node = prefix.network().bit(depth) ? node->one.get() : node->zero.get();
    }
    return node;
  }

  Node* descend_or_create(const Prefix& prefix) {
    Node* node = root_.get();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      std::unique_ptr<Node>& child =
          prefix.network().bit(depth) ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    return node;
  }

  static void visit_node(
      const Node* node, const Prefix& path,
      const std::function<void(const Prefix&, const T&)>& fn) {
    if (node == nullptr) return;
    if (node->value.has_value()) fn(path, *node->value);
    if (path.length() == 32) return;
    visit_node(node->zero.get(), path.left_half(), fn);
    visit_node(node->one.get(), path.right_half(), fn);
  }

  static std::size_t compressed_count(const Node* node,
                                      const T* inherited) {
    if (node == nullptr) return 0;
    std::size_t count = 0;
    const T* effective = inherited;
    if (node->value.has_value()) {
      if (inherited == nullptr || !(*inherited == *node->value)) ++count;
      effective = &*node->value;
    }
    return count + compressed_count(node->zero.get(), effective) +
           compressed_count(node->one.get(), effective);
  }

  std::unique_ptr<Node> root_ = std::make_unique<Node>();
  std::size_t size_ = 0;
};

}  // namespace lina::net
