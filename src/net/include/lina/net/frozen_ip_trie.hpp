#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "lina/net/ipv4.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/prof/prof.hpp"

namespace lina::net {

/// An immutable longest-prefix-match snapshot of an IpTrie, laid out for
/// the read-mostly evaluation phases (stretch, displaced-entry scans,
/// aggregateability, streamed replay).
///
/// Nodes are a contiguous preorder array of 16-byte records (child0 is
/// always the next record, so half of all descents are a sequential read);
/// payloads live in a separate dense array indexed by a 32-bit slot. A
/// root stride table sized to the entry count (up to 2^16 slots) resolves
/// the top levels of every descent with one probe, so large-table lookups
/// touch only the slot-variant tail of the walk. `lookup_many` drives
/// several descents in lockstep with software prefetch so independent
/// queries overlap their cache misses — the batch form the evaluators and
/// `scale_million_users` replay use.
///
/// Built exclusively by `IpTrie<T>::freeze()`; never mutated afterwards.
template <typename T>
class FrozenIpTrie {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// One path-compressed branch node. `key`/`len` are the node's full
  /// prefix (skipped bits included); `child1` is an arena index (child0 is
  /// implicitly `self + subtree` — see `child0` below); `value_slot`
  /// indexes `values_` or kNil.
  struct Node {
    std::uint32_t key = 0;
    std::uint32_t child0 = kNil;
    std::uint32_t child1 = kNil;
    std::uint32_t value_slot = kNil;
    std::uint8_t len = 0;
  };

  /// One slot of the root stride table: the walk state shared by every
  /// address whose top `stride_bits_` bits select this slot — the deepest
  /// reachable node still to be examined (kNil if the walk already ended)
  /// plus the best value slot accumulated above it.
  struct RootEntry {
    std::uint32_t node = kNil;
    std::uint32_t best = kNil;
  };

  FrozenIpTrie() = default;

  /// Assembled by IpTrie::freeze(): preorder node array plus dense values.
  FrozenIpTrie(std::vector<Node> nodes, std::vector<T> values,
               std::vector<Prefix> prefixes)
      : nodes_(std::move(nodes)),
        values_(std::move(values)),
        prefixes_(std::move(prefixes)) {
    build_root_table();
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  // Raw arena views for serialization (lina::snap). The spans alias the
  // trie's storage and follow its lifetime.
  [[nodiscard]] std::span<const Node> nodes() const { return nodes_; }
  [[nodiscard]] std::span<const T> values() const { return values_; }
  [[nodiscard]] std::span<const Prefix> prefixes() const { return prefixes_; }

  /// Bytes retained by the snapshot (nodes + payloads + prefix table).
  [[nodiscard]] std::size_t arena_bytes() const {
    return nodes_.capacity() * sizeof(Node) +
           values_.capacity() * sizeof(T) +
           prefixes_.capacity() * sizeof(Prefix) +
           root_.capacity() * sizeof(RootEntry);
  }

  /// Longest-prefix match, identical in result to IpTrie::lookup on the
  /// frozen source.
  [[nodiscard]] std::optional<std::pair<Prefix, T>> lookup(
      Ipv4Address addr) const {
    std::uint64_t visited = 0;
    const std::uint32_t slot = match_slot(addr.value(), visited);
    obs::metric::ip_trie_lpm_lookups().add();
    obs::metric::ip_trie_lpm_node_visits().add(visited);
    if (slot == kNil) return std::nullopt;
    return std::make_pair(prefixes_[slot], values_[slot]);
  }

  /// The matched payload only (no Prefix materialisation); nullptr on miss.
  [[nodiscard]] const T* lookup_value(Ipv4Address addr) const {
    std::uint64_t visited = 0;
    const std::uint32_t slot = match_slot(addr.value(), visited);
    obs::metric::ip_trie_lpm_lookups().add();
    obs::metric::ip_trie_lpm_node_visits().add(visited);
    return slot == kNil ? nullptr : &values_[slot];
  }

  /// Batch LPM: `out[i]` receives the payload for `addrs[i]` (nullptr when
  /// uncovered). Runs up to kLanes descents in lockstep, prefetching each
  /// lane's next node while the other lanes execute, so independent
  /// queries overlap their memory latency. Results are exactly
  /// per-query `lookup_value` in order; out.size() must equal addrs.size().
  void lookup_many(std::span<const Ipv4Address> addrs,
                   std::span<const T*> out) const {
    PROF_SPAN("lina.trie.ip_lookup_many");
    constexpr std::size_t kLanes = 8;
    std::uint64_t visited = 0;
    if (nodes_.empty()) {
      for (std::size_t i = 0; i < addrs.size(); ++i) out[i] = nullptr;
    } else {
      std::array<std::uint32_t, kLanes> node{};
      std::array<std::uint32_t, kLanes> best{};
      std::array<std::size_t, kLanes> query{};
      std::size_t next = 0;
      std::size_t active = 0;
      const auto root_slot = [&](std::size_t q) {
        return addrs[q].value() >> (32u - stride_bits_);
      };
      const auto start_lane = [&](std::size_t lane) {
        if (root_.empty()) {
          node[lane] = 0;
          best[lane] = kNil;
        } else {
          const RootEntry& e = root_[root_slot(next)];
          node[lane] = e.node;
          best[lane] = e.best;
          // Hide the next refill's root-table miss behind this lane's walk.
          if (next + 1 < addrs.size())
            __builtin_prefetch(&root_[root_slot(next + 1)]);
        }
        query[lane] = next++;
        if (node[lane] != kNil) __builtin_prefetch(&nodes_[node[lane]]);
      };
      while (next < addrs.size() && active < kLanes) start_lane(active++);
      while (active > 0) {
        for (std::size_t lane = 0; lane < active;) {
          const std::uint32_t idx = node[lane];
          std::uint32_t step = kNil;
          if (idx != kNil) {
            const Node& n = nodes_[idx];
            const std::uint32_t a = addrs[query[lane]].value();
            if (((a ^ n.key) & prefix_mask(n.len)) == 0) {
              ++visited;
              if (n.value_slot != kNil) best[lane] = n.value_slot;
              if (n.len < 32)
                step = ((a >> (31u - n.len)) & 1u) != 0 ? n.child1 : n.child0;
            }
          }
          if (step != kNil) {
            node[lane] = step;
            __builtin_prefetch(&nodes_[step]);
            ++lane;
            continue;
          }
          // Lane finished: emit, then refill or retire it.
          out[query[lane]] =
              best[lane] == kNil ? nullptr : &values_[best[lane]];
          if (next < addrs.size()) {
            start_lane(lane);
            ++lane;
          } else {
            --active;
            node[lane] = node[active];
            best[lane] = best[active];
            query[lane] = query[active];
          }
        }
      }
    }
    obs::metric::ip_trie_lpm_lookups().add(addrs.size());
    obs::metric::ip_trie_lpm_node_visits().add(visited);
  }

 private:
  /// Walks the preorder arena; returns the best value slot (kNil on miss).
  /// The root stride table resolves every node shallower than
  /// `stride_bits_` with a single probe, so the walk starts at the first
  /// slot-variant node.
  [[nodiscard]] std::uint32_t match_slot(std::uint32_t a,
                                         std::uint64_t& visited) const {
    std::uint32_t best = kNil;
    std::uint32_t idx;
    if (!root_.empty()) {
      const RootEntry& e = root_[a >> (32u - stride_bits_)];
      best = e.best;
      idx = e.node;
    } else {
      idx = nodes_.empty() ? kNil : 0;
    }
    while (idx != kNil) {
      const Node& n = nodes_[idx];
      if (((a ^ n.key) & prefix_mask(n.len)) != 0) break;
      ++visited;
      if (n.value_slot != kNil) best = n.value_slot;
      if (n.len == 32) break;
      idx = ((a >> (31u - n.len)) & 1u) != 0 ? n.child1 : n.child0;
    }
    return best;
  }

  /// Precomputes, per `stride_bits_`-bit address prefix, the walk state
  /// after consuming every node shallower than the stride: those nodes'
  /// match checks and child choices only read the top `stride_bits_` bits,
  /// so they are identical for all addresses in the slot. Nodes at or
  /// below the stride depth depend on deeper bits and are left for the
  /// per-query walk (which re-checks the continuation node's full mask).
  void build_root_table() {
    stride_bits_ = 0;
    while (stride_bits_ < 16 &&
           (std::size_t{1} << stride_bits_) < values_.size()) {
      ++stride_bits_;
    }
    root_.clear();
    if (nodes_.empty() || stride_bits_ == 0) return;
    root_.resize(std::size_t{1} << stride_bits_);
    for (std::uint32_t s = 0; s < root_.size(); ++s) {
      const std::uint32_t a = s << (32u - stride_bits_);
      RootEntry e;
      std::uint32_t idx = 0;
      while (idx != kNil) {
        const Node& n = nodes_[idx];
        if (n.len >= stride_bits_) break;  // depends on bits past the stride
        if (((a ^ n.key) & prefix_mask(n.len)) != 0) {
          idx = kNil;
          break;
        }
        if (n.value_slot != kNil) e.best = n.value_slot;
        idx = ((a >> (31u - n.len)) & 1u) != 0 ? n.child1 : n.child0;
      }
      e.node = idx;
      root_[s] = e;
    }
  }

  std::vector<Node> nodes_;     // preorder: node, subtree0, subtree1
  std::vector<T> values_;       // dense payloads, preorder discovery order
  std::vector<Prefix> prefixes_;  // prefix per value slot
  std::vector<RootEntry> root_;   // indexed by the address's top stride bits
  std::uint32_t stride_bits_ = 0;
};

}  // namespace lina::net
