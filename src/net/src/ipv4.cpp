#include "lina/net/ipv4.hpp"

#include <charconv>
#include <stdexcept>

namespace lina::net {

namespace {

std::uint32_t parse_octet(std::string_view text, std::size_t& pos) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
    throw std::invalid_argument("Ipv4Address::parse: expected digit");
  unsigned value = 0;
  std::size_t digits = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<unsigned>(text[pos] - '0');
    ++pos;
    if (++digits > 3 || value > 255)
      throw std::invalid_argument("Ipv4Address::parse: octet out of range");
  }
  return value;
}

}  // namespace

Ipv4Address Ipv4Address::parse(std::string_view text) {
  std::size_t pos = 0;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.')
        throw std::invalid_argument("Ipv4Address::parse: expected '.'");
      ++pos;
    }
    value = (value << 8) | parse_octet(text, pos);
  }
  if (pos != text.size())
    throw std::invalid_argument("Ipv4Address::parse: trailing characters");
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xffu);
  }
  return out;
}

Prefix::Prefix(Ipv4Address addr, unsigned length) : length_(length) {
  if (length > 32) throw std::invalid_argument("Prefix: length > 32");
  network_ = Ipv4Address(addr.value() & prefix_mask(length));
}

Prefix Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos)
    throw std::invalid_argument("Prefix::parse: missing '/'");
  const Ipv4Address addr = Ipv4Address::parse(text.substr(0, slash));
  const std::string_view len_text = text.substr(slash + 1);
  unsigned length = 0;
  const auto [ptr, ec] = std::from_chars(
      len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size())
    throw std::invalid_argument("Prefix::parse: bad length");
  return Prefix(addr, length);
}

bool Prefix::contains(Ipv4Address addr) const {
  return (addr.value() & prefix_mask(length_)) == network_.value();
}

bool Prefix::contains(const Prefix& other) const {
  return other.length_ >= length_ && contains(other.network_);
}

Prefix Prefix::left_half() const {
  if (length_ >= 32) throw std::logic_error("Prefix::left_half: /32");
  return Prefix(network_, length_ + 1);
}

Prefix Prefix::right_half() const {
  if (length_ >= 32) throw std::logic_error("Prefix::right_half: /32");
  const std::uint32_t flipped =
      network_.value() | (1u << (31u - length_));
  return Prefix(Ipv4Address(flipped), length_ + 1);
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace lina::net
