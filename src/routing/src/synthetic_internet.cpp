#include "lina/routing/synthetic_internet.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "lina/routing/policy_routing.hpp"

namespace lina::routing {

using topology::AsGraph;
using topology::AsId;
using topology::AsRelationship;
using topology::AsTier;
using topology::GeoPoint;

std::vector<VantageSpec> routeviews_vantage_specs() {
  // Anchor indices refer to topology::metro_anchors():
  // 0 Oregon, 1 California, 2 Georgia, 3 Virginia, 4 Sao Paulo, 5 London,
  // 6 Paris, 7 Mauritius, 8 Tokyo, 9 Sydney, 10 Singapore, 11 Mumbai.
  return {
      {"Oregon-1", 0, VantageProfile::kCore},
      {"Oregon-2", 0, VantageProfile::kRegional},
      {"Oregon-3", 0, VantageProfile::kRegional},
      {"Oregon-4", 0, VantageProfile::kRegional},
      {"California-1", 1, VantageProfile::kCore},
      {"Georgia", 2, VantageProfile::kModest},
      {"Virginia", 3, VantageProfile::kRegional},
      {"Saopaulo-1", 4, VantageProfile::kModest},
      {"London-1", 5, VantageProfile::kRegional},
      {"Mauritius", 7, VantageProfile::kEdge},
      {"Tokyo", 8, VantageProfile::kEdge},
      {"Sydney", 9, VantageProfile::kRegional},
  };
}

std::vector<VantageSpec> ripe_vantage_specs() {
  return {
      {"RIPE-Amsterdam", 5, VantageProfile::kRegional},
      {"RIPE-Paris", 6, VantageProfile::kCore},
      {"RIPE-Geneva", 6, VantageProfile::kRegional},
      {"RIPE-Stockholm", 5, VantageProfile::kModest},
      {"RIPE-Vienna", 6, VantageProfile::kModest},
      {"RIPE-NewYork", 3, VantageProfile::kRegional},
      {"RIPE-Miami", 2, VantageProfile::kRegional},
      {"RIPE-SanJose", 1, VantageProfile::kRegional},
      {"RIPE-SaoPaulo", 4, VantageProfile::kRegional},
      {"RIPE-Johannesburg", 7, VantageProfile::kModest},
      {"RIPE-Singapore", 10, VantageProfile::kCore},
      {"RIPE-Mumbai", 11, VantageProfile::kModest},
      {"RIPE-Tokyo", 8, VantageProfile::kRegional},
  };
}

namespace {

// A per-(router, neighbor) preference value standing in for the IGP
// distance / router-id tie-break real BGP applies after MED. Crucially it
// does NOT depend on the prefix: two prefixes with identical candidate
// structure must resolve to the same next hop, otherwise the displacement
// methodology sees phantom port diversity.
std::uint32_t med_hash(AsId vantage, AsId neighbor) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t v :
       {std::uint64_t{vantage}, std::uint64_t{neighbor}}) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<std::uint32_t>(h % 10);
}

}  // namespace

SyntheticInternet::SyntheticInternet(const SyntheticInternetConfig& config,
                                     std::vector<VantageSpec> specs) {
  stats::Rng rng(config.seed, "synthetic-internet");
  graph_ = topology::make_hierarchical_internet(config.topology, rng);
  assign_prefixes(config, rng);
  vantages_ = build_vantages(specs);
}

void SyntheticInternet::assign_prefixes(const SyntheticInternetConfig& config,
                                        stats::Rng& rng) {
  prefixes_by_as_.assign(graph_.as_count(), {});
  // /16 blocks carved sequentially from 1.0.0.0 upward: block b becomes
  // (b/256 + 1).(b%256).0.0/16, so prefixes read like real unicast space.
  std::uint32_t next_block = 0;
  constexpr std::uint32_t kMaxBlocks = 222u * 256u;  // up to 222.x.0.0/16

  const auto allocate = [&](AsId as, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      if (next_block == kMaxBlocks)
        throw std::logic_error("SyntheticInternet: /16 pool exhausted");
      const net::Prefix prefix(
          net::Ipv4Address((((next_block >> 8) + 1u) << 24) |
                           ((next_block & 0xffu) << 16)),
          16);
      ++next_block;
      prefixes_by_as_[as].push_back(prefix);
      all_prefixes_.push_back(prefix);
      owner_trie_.insert(prefix, as);
    }
  };

  for (std::size_t as = 0; as < graph_.as_count(); ++as) {
    const auto id = static_cast<AsId>(as);
    switch (graph_.tier(id)) {
      case AsTier::kTier1:
        break;  // pure transit
      case AsTier::kTier2:
        allocate(id, config.prefixes_per_tier2);
        break;
      case AsTier::kStub:
        allocate(id, config.min_prefixes_per_stub +
                         rng.index(config.max_prefixes_per_stub -
                                   config.min_prefixes_per_stub + 1));
        break;
    }
    if (!prefixes_by_as_[as].empty()) edge_ases_.push_back(id);
  }
}

AsId SyntheticInternet::pick_vantage_as(
    const VantageSpec& spec, const std::vector<AsId>& used) const {
  const GeoPoint anchor = topology::metro_anchors()[spec.metro_anchor];
  const auto distance_to_anchor = [&](AsId as) {
    return topology::great_circle_km(anchor, graph_.location(as));
  };
  const auto is_used = [&used](AsId as) {
    return std::find(used.begin(), used.end(), as) != used.end();
  };

  // Picks the best unused candidate (falls back to allowing reuse only if
  // every candidate is taken).
  const auto best_by = [&](const std::vector<AsId>& pool,
                           auto&& better) -> AsId {
    if (pool.empty())
      throw std::logic_error("SyntheticInternet: empty vantage pool");
    const AsId* best = nullptr;
    for (const AsId& candidate : pool) {
      if (is_used(candidate)) continue;
      if (best == nullptr || better(candidate, *best)) best = &candidate;
    }
    if (best != nullptr) return *best;
    AsId fallback = pool.front();
    for (const AsId candidate : pool) {
      if (better(candidate, fallback)) fallback = candidate;
    }
    return fallback;
  };

  switch (spec.profile) {
    case VantageProfile::kCore: {
      const auto pool = graph_.ases_of_tier(AsTier::kTier1);
      return best_by(pool, [&](AsId a, AsId b) {
        return distance_to_anchor(a) < distance_to_anchor(b);
      });
    }
    case VantageProfile::kRegional:
    case VantageProfile::kModest: {
      // Among the 8 tier-2s nearest the anchor, pick the highest-degree
      // (regional) or lowest-degree (modest) one.
      auto pool = graph_.ases_of_tier(AsTier::kTier2);
      std::sort(pool.begin(), pool.end(), [&](AsId a, AsId b) {
        return distance_to_anchor(a) < distance_to_anchor(b);
      });
      pool.resize(std::min<std::size_t>(pool.size(), 8));
      const bool want_high = spec.profile == VantageProfile::kRegional;
      return best_by(pool, [&](AsId a, AsId b) {
        return want_high ? graph_.degree(a) > graph_.degree(b)
                         : graph_.degree(a) < graph_.degree(b);
      });
    }
    case VantageProfile::kEdge: {
      const auto pool = graph_.ases_of_tier(AsTier::kStub);
      return best_by(pool, [&](AsId a, AsId b) {
        // Prefer single-homed, then nearest.
        if (graph_.degree(a) != graph_.degree(b))
          return graph_.degree(a) < graph_.degree(b);
        return distance_to_anchor(a) < distance_to_anchor(b);
      });
    }
  }
  throw std::logic_error("SyntheticInternet: unknown vantage profile");
}

std::vector<VantageRouter> SyntheticInternet::build_vantages(
    std::span<const VantageSpec> specs) const {
  std::vector<VantageRouter> routers;
  routers.reserve(specs.size());
  std::vector<AsId> used;
  for (const VantageSpec& spec : specs) {
    const AsId as = pick_vantage_as(spec, used);
    used.push_back(as);
    routers.emplace_back(spec.name, as, graph_.location(as));
  }

  // One policy-routing pass per destination AS serves every router.
  for (const AsId d : edge_ases_) {
    const PolicyRoutes routes(graph_, d);
    for (VantageRouter& router : routers) {
      const AsId v = router.as_number();
      if (v == d) {
        // Local delivery: a self route whose port is the router's own AS.
        for (const net::Prefix& prefix : prefixes_by_as_[d]) {
          router.install(RibRoute{.prefix = prefix,
                                  .as_path = AsPath({v}),
                                  .route_class = RouteClass::kCustomer,
                                  .local_pref = 0,
                                  .med = 0});
        }
        continue;
      }
      for (const AsGraph::Link& link : graph_.links(v)) {
        const AsId n = link.neighbor;
        std::optional<AsPath> tail;
        RouteClass cls;
        if (link.rel == AsRelationship::kProvider) {
          // Providers export their best route of any class.
          tail = routes.best_path(n);
          cls = RouteClass::kProvider;
        } else {
          // Customers and peers export only customer routes (+ own prefix).
          tail = routes.path(n, RouteClass::kCustomer);
          cls = link.rel == AsRelationship::kCustomer ? RouteClass::kCustomer
                                                      : RouteClass::kPeer;
        }
        if (!tail.has_value()) continue;
        std::vector<AsId> hops{n};
        hops.insert(hops.end(), tail->hops().begin(), tail->hops().end());
        AsPath path(std::move(hops));
        if (path.contains(v) || !path.loop_free()) continue;
        for (const net::Prefix& prefix : prefixes_by_as_[d]) {
          router.install(
              RibRoute{.prefix = prefix,
                       .as_path = path,
                       .route_class = cls,
                       .local_pref = 0,
                       .med = med_hash(v, n)});
        }
      }
    }
  }
  for (VantageRouter& router : routers) router.build_fib();
  return routers;
}

const VantageRouter& SyntheticInternet::vantage(std::string_view name) const {
  for (const VantageRouter& router : vantages_) {
    if (router.name() == name) return router;
  }
  throw std::invalid_argument("SyntheticInternet: unknown vantage " +
                              std::string(name));
}

std::span<const net::Prefix> SyntheticInternet::prefixes_of(AsId as) const {
  if (as >= prefixes_by_as_.size())
    throw std::out_of_range("SyntheticInternet::prefixes_of");
  return prefixes_by_as_[as];
}

AsId SyntheticInternet::owner_of(net::Ipv4Address addr) const {
  const auto hit = owner_trie_.lookup(addr);
  if (!hit.has_value())
    throw std::invalid_argument("SyntheticInternet::owner_of: " +
                                addr.to_string() + " not announced");
  return hit->second;
}

net::Prefix SyntheticInternet::prefix_of(net::Ipv4Address addr) const {
  const auto hit = owner_trie_.lookup(addr);
  if (!hit.has_value())
    throw std::invalid_argument("SyntheticInternet::prefix_of: " +
                                addr.to_string() + " not announced");
  return hit->first;
}

net::Ipv4Address SyntheticInternet::random_address_in(AsId as,
                                                      stats::Rng& rng) const {
  const auto prefixes = prefixes_of(as);
  if (prefixes.empty())
    throw std::invalid_argument(
        "SyntheticInternet::random_address_in: AS announces no prefix");
  return random_address_in(prefixes[rng.index(prefixes.size())], rng);
}

net::Ipv4Address SyntheticInternet::random_address_in(
    const net::Prefix& prefix, stats::Rng& rng) {
  if (prefix.length() >= 31)
    throw std::invalid_argument(
        "SyntheticInternet::random_address_in: prefix too small");
  const std::uint32_t host_bits = 32 - prefix.length();
  const auto offset = static_cast<std::uint32_t>(
      rng.uniform_int(1, (std::uint64_t{1} << host_bits) - 2));
  return net::Ipv4Address(prefix.network().value() | offset);
}

std::vector<AsId> SyntheticInternet::edge_ases_near(GeoPoint point,
                                                    std::size_t k) const {
  std::vector<AsId> sorted = edge_ases_;
  std::sort(sorted.begin(), sorted.end(), [&](AsId a, AsId b) {
    return topology::great_circle_km(point, graph_.location(a)) <
           topology::great_circle_km(point, graph_.location(b));
  });
  sorted.resize(std::min(k, sorted.size()));
  return sorted;
}

}  // namespace lina::routing
