#include "lina/routing/fib.hpp"

#include "lina/obs/metrics.hpp"

namespace lina::routing {

bool entry_preferred(const FibEntry& a, const FibEntry& b) {
  if (a.route_class != b.route_class) return a.route_class < b.route_class;
  if (a.path_length != b.path_length) return a.path_length < b.path_length;
  if (a.med != b.med) return a.med < b.med;
  return a.port < b.port;
}

Fib Fib::from_rib(const Rib& rib) {
  Fib fib;
  for (const net::Prefix& prefix : rib.prefixes()) {
    const auto best = rib.best(prefix);
    if (!best.has_value()) continue;
    fib.insert(prefix,
               FibEntry{.port = best->port(),
                        .route_class = best->route_class,
                        .path_length =
                            static_cast<std::uint32_t>(best->as_path.length()),
                        .med = best->med});
  }
  return fib;
}

void Fib::insert(const net::Prefix& prefix, FibEntry entry) {
  trie_.insert(prefix, entry);
}

std::optional<std::pair<net::Prefix, FibEntry>> Fib::lookup(
    net::Ipv4Address addr) const {
  return trie_.lookup(addr);
}

std::optional<Port> Fib::port_for(net::Ipv4Address addr) const {
  const auto hit = trie_.lookup(addr);
  if (!hit.has_value()) return std::nullopt;
  return hit->second.port;
}

FrozenFib Fib::freeze() const {
  obs::metric::fib_arena_bytes().set(
      static_cast<double>(trie_.arena_bytes()));
  return FrozenFib(trie_.freeze());
}

std::size_t Fib::next_hop_degree() const {
  std::set<Port> ports;
  trie_.visit([&ports](const net::Prefix&, const FibEntry& e) {
    ports.insert(e.port);
  });
  return ports.size();
}

}  // namespace lina::routing
