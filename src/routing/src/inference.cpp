#include "lina/routing/inference.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace lina::routing {

using topology::AsId;
using topology::AsRelationship;

std::uint64_t AsRelationshipInference::key(AsId a, AsId b) {
  const AsId lo = std::min(a, b);
  const AsId hi = std::max(a, b);
  return (std::uint64_t{lo} << 32) | hi;
}

AsRelationshipInference::AsRelationshipInference(std::span<const AsPath> paths,
                                                 double peer_degree_ratio) {
  // Phase 1: observed degrees.
  std::unordered_map<AsId, std::set<AsId>> neighbors;
  for (const AsPath& path : paths) {
    const auto& hops = path.hops();
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      neighbors[hops[i]].insert(hops[i + 1]);
      neighbors[hops[i + 1]].insert(hops[i]);
    }
  }
  for (const auto& [as, nbrs] : neighbors) degrees_[as] = nbrs.size();

  // Phase 2: per-path top provider + directional votes.
  for (const AsPath& path : paths) {
    const auto& hops = path.hops();
    if (hops.size() < 2) continue;
    std::size_t top = 0;
    for (std::size_t i = 1; i < hops.size(); ++i) {
      if (degrees_[hops[i]] > degrees_[hops[top]]) top = i;
    }
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      const AsId a = hops[i];
      const AsId b = hops[i + 1];
      Votes& v = votes_[key(a, b)];
      // Uphill before the top: the later AS provides transit to the earlier.
      // Downhill at or after the top: the earlier provides to the later.
      const bool later_provides = (i + 1 <= top);
      const AsId provider = later_provides ? b : a;
      const AsId lo = std::min(a, b);
      if (provider == lo) {
        ++v.first_provides_second;
      } else {
        ++v.second_provides_first;
      }
      if (i == top || i + 1 == top) v.top_adjacent = true;
    }
  }

  // Phase 3: classification.
  for (const auto& [k, v] : votes_) {
    const auto lo = static_cast<AsId>(k >> 32);
    const auto hi = static_cast<AsId>(k & 0xffffffffu);
    const double dlo = static_cast<double>(std::max<std::size_t>(degrees_[lo], 1));
    const double dhi = static_cast<double>(std::max<std::size_t>(degrees_[hi], 1));
    const double ratio = std::max(dlo, dhi) / std::min(dlo, dhi);

    const bool conflicting =
        v.first_provides_second > 0 && v.second_provides_first > 0;
    const bool similar_degree = ratio <= peer_degree_ratio;

    AsRelationship role_of_hi;  // relative to lo
    if ((conflicting && similar_degree) ||
        (v.top_adjacent && similar_degree)) {
      role_of_hi = AsRelationship::kPeer;
    } else if (v.first_provides_second >= v.second_provides_first) {
      // lo provides transit to hi: hi is lo's customer.
      role_of_hi = AsRelationship::kCustomer;
    } else {
      role_of_hi = AsRelationship::kProvider;
    }
    verdicts_[k] = role_of_hi;
  }
}

std::optional<AsRelationship> AsRelationshipInference::relationship(
    AsId a, AsId b) const {
  const auto it = verdicts_.find(key(a, b));
  if (it == verdicts_.end()) return std::nullopt;
  const AsId lo = std::min(a, b);
  AsRelationship role_of_hi = it->second;
  if (a == lo) return role_of_hi;  // asking for role of b (== hi) wrt a
  // Asking for role of b (== lo) wrt a (== hi): invert.
  switch (role_of_hi) {
    case AsRelationship::kPeer:
      return AsRelationship::kPeer;
    case AsRelationship::kCustomer:
      return AsRelationship::kProvider;
    case AsRelationship::kProvider:
      return AsRelationship::kCustomer;
  }
  return std::nullopt;
}

std::size_t AsRelationshipInference::observed_degree(AsId as) const {
  const auto it = degrees_.find(as);
  return it == degrees_.end() ? 0 : it->second;
}

}  // namespace lina::routing
