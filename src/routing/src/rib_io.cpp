#include "lina/routing/rib_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace lina::routing {

namespace {

const char* class_name(RouteClass cls) {
  switch (cls) {
    case RouteClass::kCustomer:
      return "customer";
    case RouteClass::kPeer:
      return "peer";
    case RouteClass::kProvider:
      return "provider";
  }
  throw std::invalid_argument("rib_io: unknown route class");
}

RouteClass parse_class(const std::string& text) {
  if (text == "customer") return RouteClass::kCustomer;
  if (text == "peer") return RouteClass::kPeer;
  if (text == "provider") return RouteClass::kProvider;
  throw std::invalid_argument("rib_io: bad relationship '" + text + "'");
}

std::uint32_t parse_u32(const std::string& text, const char* what) {
  try {
    std::size_t pos = 0;
    const unsigned long value = std::stoul(text, &pos);
    if (pos != text.size() || value > 0xffffffffUL)
      throw std::invalid_argument(what);
    return static_cast<std::uint32_t>(value);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("rib_io: bad ") + what +
                                " field: '" + text + "'");
  }
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, sep)) fields.push_back(field);
  return fields;
}

}  // namespace

void write_rib(std::ostream& out, const Rib& rib) {
  out << "PREFIX|NEXT_HOP_AS|LOCAL_PREF|MED|REL|AS_PATH\n";
  for (const net::Prefix& prefix : rib.prefixes()) {
    for (const RibRoute& route : rib.candidates(prefix)) {
      out << prefix.to_string() << '|' << route.port() << '|'
          << route.local_pref << '|' << route.med << '|'
          << class_name(route.route_class) << '|'
          << route.as_path.to_string() << '\n';
    }
  }
}

Rib read_rib(std::istream& in, std::string_view context) {
  Rib rib;
  std::string line;
  std::size_t line_no = 0;
  bool first = true;
  const auto fail = [&](const std::string& what) -> RibIoError {
    return RibIoError(std::string(context) + ":line " +
                      std::to_string(line_no) + ": " + what + " in row '" +
                      line + "'");
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("PREFIX", 0) == 0) continue;  // header
    }
    const auto fields = split(line, '|');
    if (fields.size() != 6) {
      throw fail("row needs 6 |-separated fields, got " +
                 std::to_string(fields.size()));
    }
    RibRoute route;
    try {
      route.prefix = net::Prefix::parse(fields[0]);
      const std::uint32_t next_hop = parse_u32(fields[1], "next hop");
      route.local_pref = parse_u32(fields[2], "local pref");
      route.med = parse_u32(fields[3], "med");
      route.route_class = parse_class(fields[4]);

      std::vector<topology::AsId> hops;
      std::istringstream path_stream(fields[5]);
      std::string token;
      while (path_stream >> token) {
        hops.push_back(parse_u32(token, "AS path hop"));
      }
      if (hops.empty()) throw std::invalid_argument("rib_io: empty AS path");
      if (hops.front() != next_hop)
        throw std::invalid_argument(
            "rib_io: NEXT_HOP_AS must equal the AS path's first hop");
      route.as_path = AsPath(std::move(hops));
    } catch (const std::exception& e) {
      throw fail(e.what());
    }
    rib.add(std::move(route));
  }
  return rib;
}

VantageRouter vantage_from_dump(std::istream& in, std::string name,
                                topology::AsId as_number,
                                topology::GeoPoint location) {
  VantageRouter router(std::move(name), as_number, location);
  const Rib rib = read_rib(in);
  for (const net::Prefix& prefix : rib.prefixes()) {
    for (const RibRoute& route : rib.candidates(prefix)) {
      router.install(route);
    }
  }
  router.build_fib();
  return router;
}

}  // namespace lina::routing
