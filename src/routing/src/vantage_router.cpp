#include "lina/routing/vantage_router.hpp"

namespace lina::routing {

void VantageRouter::install(RibRoute route) {
  rib_.add(std::move(route));
  fib_valid_ = false;
}

void VantageRouter::build_fib() const {
  if (!fib_valid_) {
    fib_ = Fib::from_rib(rib_);
    fib_valid_ = true;
  }
}

const Fib& VantageRouter::fib() const {
  build_fib();
  return fib_;
}

std::optional<std::pair<net::Prefix, FibEntry>> VantageRouter::route_for(
    net::Ipv4Address addr) const {
  return fib().lookup(addr);
}

std::optional<Port> VantageRouter::port_for(net::Ipv4Address addr) const {
  return fib().port_for(addr);
}

std::size_t VantageRouter::next_hop_degree() const {
  return fib().next_hop_degree();
}

}  // namespace lina::routing
