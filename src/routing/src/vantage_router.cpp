#include "lina/routing/vantage_router.hpp"

namespace lina::routing {

void VantageRouter::install(RibRoute route) {
  rib_.add(std::move(route));
  // Invalidate by re-arming: call_once flags cannot be reset in place.
  fib_once_ = std::make_unique<std::once_flag>();
}

void VantageRouter::build_fib() const {
  std::call_once(*fib_once_, [this] { fib_ = Fib::from_rib(rib_); });
}

const Fib& VantageRouter::fib() const {
  build_fib();
  return fib_;
}

std::optional<std::pair<net::Prefix, FibEntry>> VantageRouter::route_for(
    net::Ipv4Address addr) const {
  return fib().lookup(addr);
}

std::optional<Port> VantageRouter::port_for(net::Ipv4Address addr) const {
  return fib().port_for(addr);
}

std::size_t VantageRouter::next_hop_degree() const {
  return fib().next_hop_degree();
}

}  // namespace lina::routing
