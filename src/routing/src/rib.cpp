#include "lina/routing/rib.hpp"

#include <stdexcept>

namespace lina::routing {

bool route_preferred(const RibRoute& a, const RibRoute& b) {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.route_class != b.route_class) return a.route_class < b.route_class;
  if (a.as_path.length() != b.as_path.length())
    return a.as_path.length() < b.as_path.length();
  if (a.med != b.med) return a.med < b.med;
  return a.port() < b.port();
}

void Rib::add(RibRoute route) {
  if (route.as_path.empty())
    throw std::invalid_argument("Rib::add: empty AS path");
  if (!route.as_path.loop_free())
    throw std::invalid_argument("Rib::add: AS path has a loop");
  routes_[route.prefix].push_back(std::move(route));
  ++route_count_;
}

std::span<const RibRoute> Rib::candidates(const net::Prefix& prefix) const {
  const auto it = routes_.find(prefix);
  if (it == routes_.end()) return {};
  return it->second;
}

std::optional<RibRoute> Rib::best(const net::Prefix& prefix) const {
  const auto it = routes_.find(prefix);
  if (it == routes_.end() || it->second.empty()) return std::nullopt;
  const RibRoute* best = &it->second.front();
  for (const RibRoute& r : it->second) {
    if (route_preferred(r, *best)) best = &r;
  }
  return *best;
}

std::vector<net::Prefix> Rib::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(routes_.size());
  for (const auto& [prefix, _] : routes_) out.push_back(prefix);
  return out;
}

}  // namespace lina::routing
