#include "lina/routing/name_fib.hpp"

#include <stdexcept>

#include "lina/names/interner.hpp"
#include "lina/obs/metrics.hpp"

namespace lina::routing {

void NameFib::announce(const names::ContentName& prefix, Port port) {
  trie_.insert(prefix, port);
}

bool NameFib::withdraw(const names::ContentName& prefix) {
  return trie_.erase(prefix);
}

std::optional<Port> NameFib::port_for(const names::ContentName& name) const {
  const Port* p = trie_.lookup_value(name);
  if (p == nullptr) return std::nullopt;
  return *p;
}

FrozenNameFib NameFib::freeze() const {
  obs::metric::name_fib_arena_bytes().set(
      static_cast<double>(trie_.arena_bytes()));
  const names::ComponentInterner& interner = names::ComponentInterner::global();
  obs::metric::name_interner_entries().set(
      static_cast<double>(interner.size()));
  obs::metric::name_interner_bytes().set(
      static_cast<double>(interner.bytes()));
  return FrozenNameFib(trie_.freeze());
}

bool NameFib::process_rename(const names::ContentName& from,
                             const names::ContentName& to) {
  const auto old_port = port_for(from);
  if (!old_port.has_value())
    throw std::invalid_argument("NameFib::process_rename: '" + from.to_dns() +
                                "' has no route");
  const auto new_port = port_for(to);
  if (new_port.has_value() && *new_port == *old_port) return false;
  // Displaced: longest-prefix matching would now send requests for `to`
  // out the wrong port, so pin an exception entry.
  if (trie_.insert(to, *old_port)) ++exceptions_;
  return true;
}

}  // namespace lina::routing
