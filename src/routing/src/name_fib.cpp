#include "lina/routing/name_fib.hpp"

#include <stdexcept>

namespace lina::routing {

void NameFib::announce(const names::ContentName& prefix, Port port) {
  trie_.insert(prefix, port);
}

bool NameFib::withdraw(const names::ContentName& prefix) {
  return trie_.erase(prefix);
}

std::optional<Port> NameFib::port_for(const names::ContentName& name) const {
  const auto hit = trie_.lookup(name);
  if (!hit.has_value()) return std::nullopt;
  return hit->second;
}

bool NameFib::process_rename(const names::ContentName& from,
                             const names::ContentName& to) {
  const auto old_port = port_for(from);
  if (!old_port.has_value())
    throw std::invalid_argument("NameFib::process_rename: '" + from.to_dns() +
                                "' has no route");
  const auto new_port = port_for(to);
  if (new_port.has_value() && *new_port == *old_port) return false;
  // Displaced: longest-prefix matching would now send requests for `to`
  // out the wrong port, so pin an exception entry.
  if (trie_.insert(to, *old_port)) ++exceptions_;
  return true;
}

}  // namespace lina::routing
