#include "lina/routing/policy_routing.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>

#include "lina/topology/graph.hpp"

namespace lina::routing {

using topology::AsGraph;
using topology::AsId;
using topology::AsRelationship;
using topology::kNoNode;

PolicyRoutes::PolicyRoutes(const AsGraph& graph, AsId destination)
    : destination_(destination) {
  const std::size_t n = graph.as_count();
  if (destination >= n)
    throw std::out_of_range("PolicyRoutes: destination out of range");

  customer_dist_.assign(n, kUnreachable);
  peer_dist_.assign(n, kUnreachable);
  provider_dist_.assign(n, kUnreachable);
  customer_parent_.assign(n, kNoNode);
  peer_parent_.assign(n, kNoNode);
  provider_parent_.assign(n, kNoNode);

  // Phase 1 — customer routes: at AS u, a route learned from a customer of
  // u whose own route is also a customer route (pure downhill toward the
  // destination). BFS from the destination climbing provider links.
  customer_dist_[destination] = 0;
  std::deque<AsId> queue{destination};
  while (!queue.empty()) {
    const AsId v = queue.front();
    queue.pop_front();
    for (const AsGraph::Link& link : graph.links(v)) {
      // link.rel is the role of link.neighbor relative to v; we want ASes u
      // for which v is a customer, i.e. v's providers.
      if (link.rel != AsRelationship::kProvider) continue;
      const AsId u = link.neighbor;
      const std::size_t candidate = customer_dist_[v] + 1;
      if (candidate < customer_dist_[u] ||
          (candidate == customer_dist_[u] && v < customer_parent_[u])) {
        const bool first_visit = customer_dist_[u] == kUnreachable;
        customer_dist_[u] = candidate;
        customer_parent_[u] = v;
        if (first_visit) queue.push_back(u);
      }
    }
  }

  // Phase 2 — peer routes: one lateral peering hop into a customer route.
  for (AsId u = 0; u < n; ++u) {
    for (const AsGraph::Link& link : graph.links(u)) {
      if (link.rel != AsRelationship::kPeer) continue;
      const AsId w = link.neighbor;
      if (customer_dist_[w] == kUnreachable) continue;
      const std::size_t candidate = customer_dist_[w] + 1;
      if (candidate < peer_dist_[u] ||
          (candidate == peer_dist_[u] && w < peer_parent_[u])) {
        peer_dist_[u] = candidate;
        peer_parent_[u] = w;
      }
    }
  }

  // Phase 3 — provider routes: climb to a provider and take its best route
  // of any class (providers export everything to customers). Multi-source
  // Dijkstra keyed by each AS's best known distance, relaxing downward to
  // customers.
  const auto base = [this](AsId x) {
    return std::min(customer_dist_[x], peer_dist_[x]);
  };
  using Item = std::pair<std::size_t, AsId>;  // (value used to relax, AS)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (AsId x = 0; x < n; ++x) {
    if (base(x) != kUnreachable) heap.push({base(x), x});
  }
  while (!heap.empty()) {
    const auto [value, x] = heap.top();
    heap.pop();
    const std::size_t best_x = std::min(base(x), provider_dist_[x]);
    if (value > best_x) continue;  // stale entry
    for (const AsGraph::Link& link : graph.links(x)) {
      // We relax to ASes u that are customers of x.
      if (link.rel != AsRelationship::kCustomer) continue;
      const AsId u = link.neighbor;
      const std::size_t candidate = value + 1;
      if (candidate < provider_dist_[u] ||
          (candidate == provider_dist_[u] && x < provider_parent_[u])) {
        provider_dist_[u] = candidate;
        provider_parent_[u] = x;
        heap.push({candidate, u});
      }
    }
  }
}

std::size_t PolicyRoutes::raw_distance(AsId as, RouteClass cls) const {
  switch (cls) {
    case RouteClass::kCustomer:
      return customer_dist_[as];
    case RouteClass::kPeer:
      return peer_dist_[as];
    case RouteClass::kProvider:
      return provider_dist_[as];
  }
  return kUnreachable;
}

std::optional<std::size_t> PolicyRoutes::distance(AsId as,
                                                  RouteClass cls) const {
  if (as >= customer_dist_.size())
    throw std::out_of_range("PolicyRoutes::distance");
  const std::size_t d = raw_distance(as, cls);
  if (d == kUnreachable) return std::nullopt;
  return d;
}

std::optional<RouteClass> PolicyRoutes::best_class(AsId as) const {
  if (as >= customer_dist_.size())
    throw std::out_of_range("PolicyRoutes::best_class");
  // Preference order is class-first, not distance-first (Gao-Rexford).
  if (customer_dist_[as] != kUnreachable) return RouteClass::kCustomer;
  if (peer_dist_[as] != kUnreachable) return RouteClass::kPeer;
  if (provider_dist_[as] != kUnreachable) return RouteClass::kProvider;
  return std::nullopt;
}

std::optional<std::size_t> PolicyRoutes::best_distance(AsId as) const {
  const auto cls = best_class(as);
  if (!cls.has_value()) return std::nullopt;
  return raw_distance(as, *cls);
}

std::optional<AsPath> PolicyRoutes::path(AsId as, RouteClass cls) const {
  if (distance(as, cls) == std::nullopt) return std::nullopt;
  std::vector<AsId> hops;
  AsId current = as;
  RouteClass mode = cls;
  // Walk parent pointers; a provider-route walk switches to the parent's
  // best class once the climb reaches an AS with a customer/peer route.
  while (current != destination_) {
    AsId next = kNoNode;
    switch (mode) {
      case RouteClass::kCustomer:
        next = customer_parent_[current];
        mode = RouteClass::kCustomer;
        break;
      case RouteClass::kPeer:
        next = peer_parent_[current];
        mode = RouteClass::kCustomer;  // after a peer hop, pure downhill
        break;
      case RouteClass::kProvider: {
        next = provider_parent_[current];
        // At the parent, continue in whichever class realized its value.
        const std::size_t via_customer = customer_dist_[next];
        const std::size_t via_peer = peer_dist_[next];
        const std::size_t via_provider = provider_dist_[next];
        const std::size_t best =
            std::min({via_customer, via_peer, via_provider});
        if (best == via_customer) {
          mode = RouteClass::kCustomer;
        } else if (best == via_peer) {
          mode = RouteClass::kPeer;
        } else {
          mode = RouteClass::kProvider;
        }
        break;
      }
    }
    if (next == kNoNode)
      throw std::logic_error("PolicyRoutes::path: broken parent chain");
    hops.push_back(next);
    current = next;
    if (hops.size() > customer_dist_.size())
      throw std::logic_error("PolicyRoutes::path: loop in parent chain");
  }
  return AsPath(std::move(hops));
}

std::optional<AsPath> PolicyRoutes::best_path(AsId as) const {
  const auto cls = best_class(as);
  if (!cls.has_value()) return std::nullopt;
  return path(as, *cls);
}

}  // namespace lina::routing
