#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>

#include "lina/routing/as_path.hpp"
#include "lina/topology/as_graph.hpp"

namespace lina::routing {

/// Infers AS business relationships from observed AS paths using the
/// degree-based heuristic of Gao [IEEE/ACM ToN 2001], which the paper
/// applies to substitute for the missing local-preference values ("we simply
/// rely on the customer > peer > provider policy using standard techniques
/// for inferring AS relationships [20]").
///
/// Algorithm (phases as in the original):
///  1. compute each AS's degree as the number of distinct neighbors seen
///     across all paths;
///  2. for each path, locate the highest-degree AS (the "top provider");
///     every edge before it votes customer-to-provider, every edge after it
///     votes provider-to-customer;
///  3. edges with conflicting votes, or edges adjacent to the top whose
///     endpoint degrees are within `peer_degree_ratio`, are classified as
///     peering.
class AsRelationshipInference {
 public:
  explicit AsRelationshipInference(std::span<const AsPath> paths,
                                   double peer_degree_ratio = 2.0);

  /// The inferred role of `b` relative to `a`, or nullopt if the pair never
  /// appeared adjacent in any path.
  [[nodiscard]] std::optional<topology::AsRelationship> relationship(
      topology::AsId a, topology::AsId b) const;

  /// Degree of an AS as observed in the input paths (0 if unseen).
  [[nodiscard]] std::size_t observed_degree(topology::AsId as) const;

  /// Number of distinct adjacent AS pairs classified.
  [[nodiscard]] std::size_t classified_pair_count() const {
    return verdicts_.size();
  }

 private:
  struct Votes {
    std::size_t first_provides_second = 0;  // a provides transit to b
    std::size_t second_provides_first = 0;
    bool top_adjacent = false;  // edge touched a path's top provider
  };

  // Key: canonical (min, max) pair packed into 64 bits.
  static std::uint64_t key(topology::AsId a, topology::AsId b);

  std::unordered_map<std::uint64_t, Votes> votes_;
  std::unordered_map<topology::AsId, std::size_t> degrees_;
  std::unordered_map<std::uint64_t, topology::AsRelationship> verdicts_;
  // verdicts_ stores the role of the higher-id AS relative to the lower-id.
};

}  // namespace lina::routing
