#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lina/net/ip_trie.hpp"
#include "lina/net/ipv4.hpp"
#include "lina/routing/vantage_router.hpp"
#include "lina/stats/rng.hpp"
#include "lina/topology/as_graph.hpp"

namespace lina::routing {

/// How much connectivity a synthetic vantage router has — the knob that
/// reproduces the paper's cross-router spread (high next-hop-degree
/// "Oregon" collectors vs the barely-impacted "Mauritius"/"Tokyo" ones).
enum class VantageProfile : std::uint8_t {
  kCore,      // placed at a tier-1 AS: full peer mesh + customers
  kRegional,  // high-degree tier-2 near the anchor
  kModest,    // low-degree tier-2 (the paper's "Georgia")
  kEdge,      // stub AS: one or two providers only
};

struct VantageSpec {
  std::string name;
  std::size_t metro_anchor;  // index into topology::metro_anchors()
  VantageProfile profile = VantageProfile::kCore;
};

/// The twelve vantage routers of the paper's Routeviews set (§6.2.1).
[[nodiscard]] std::vector<VantageSpec> routeviews_vantage_specs();

/// A thirteen-router set standing in for the paper's RIPE sensitivity set
/// (13 cities, 10 distinct from the Routeviews set).
[[nodiscard]] std::vector<VantageSpec> ripe_vantage_specs();

struct SyntheticInternetConfig {
  topology::InternetConfig topology;
  std::size_t min_prefixes_per_stub = 1;
  std::size_t max_prefixes_per_stub = 3;
  std::size_t prefixes_per_tier2 = 2;
  std::uint64_t seed = 42;
};

/// A fully assembled synthetic Internet: AS graph + prefix ownership +
/// policy-routed RIBs/FIBs at a set of named vantage routers. This is the
/// stand-in for "real Internet topologies and routing tables from real
/// routers" (§3.2) that every empirical experiment runs against.
class SyntheticInternet {
 public:
  explicit SyntheticInternet(
      const SyntheticInternetConfig& config = {},
      std::vector<VantageSpec> specs = routeviews_vantage_specs());

  [[nodiscard]] const topology::AsGraph& graph() const { return graph_; }

  [[nodiscard]] std::span<const VantageRouter> vantages() const {
    return vantages_;
  }
  [[nodiscard]] const VantageRouter& vantage(std::string_view name) const;

  /// Prefixes announced by an AS (empty for pure-transit ASes).
  [[nodiscard]] std::span<const net::Prefix> prefixes_of(
      topology::AsId as) const;

  /// Every announced prefix.
  [[nodiscard]] std::span<const net::Prefix> all_prefixes() const {
    return all_prefixes_;
  }

  /// The AS announcing the covering prefix of `addr`; throws if uncovered.
  [[nodiscard]] topology::AsId owner_of(net::Ipv4Address addr) const;

  /// The announced prefix covering `addr`; throws if uncovered.
  [[nodiscard]] net::Prefix prefix_of(net::Ipv4Address addr) const;

  /// A uniformly random host address within one of `as`'s prefixes.
  /// Throws if the AS announces no prefix.
  [[nodiscard]] net::Ipv4Address random_address_in(topology::AsId as,
                                                   stats::Rng& rng) const;

  /// A uniformly random host address within a specific announced prefix
  /// (used to model DHCP/load-balancer churn that stays inside one subnet).
  [[nodiscard]] static net::Ipv4Address random_address_in(
      const net::Prefix& prefix, stats::Rng& rng);

  /// ASes that announce at least one prefix (candidate endpoint homes).
  [[nodiscard]] std::span<const topology::AsId> edge_ases() const {
    return edge_ases_;
  }

  /// The `k` edge ASes nearest to a point — used to site CDN replicas.
  [[nodiscard]] std::vector<topology::AsId> edge_ases_near(
      topology::GeoPoint point, std::size_t k) const;

  /// Builds vantage routers for an extra spec list against this same
  /// Internet (used for the RIPE sensitivity experiment).
  [[nodiscard]] std::vector<VantageRouter> build_vantages(
      std::span<const VantageSpec> specs) const;

 private:
  void assign_prefixes(const SyntheticInternetConfig& config,
                       stats::Rng& rng);
  [[nodiscard]] topology::AsId pick_vantage_as(
      const VantageSpec& spec, const std::vector<topology::AsId>& used) const;

  topology::AsGraph graph_;
  std::vector<VantageRouter> vantages_;
  std::vector<std::vector<net::Prefix>> prefixes_by_as_;
  std::vector<net::Prefix> all_prefixes_;
  std::vector<topology::AsId> edge_ases_;
  net::IpTrie<topology::AsId> owner_trie_;
};

}  // namespace lina::routing
