#pragma once

#include <optional>
#include <vector>

#include "lina/routing/as_path.hpp"
#include "lina/routing/rib.hpp"
#include "lina/topology/as_graph.hpp"

namespace lina::routing {

/// Valley-free policy routes from every AS toward one destination AS.
///
/// A route is valley-free if it climbs customer-to-provider links, crosses
/// at most one peering link, then descends provider-to-customer links.
/// Route preference at each AS is customer > peer > provider, shortest
/// within a class — i.e. Gao-Rexford-stable routing, which is the global
/// behaviour a real router's RIB "already incorporates" (§3.2). The engine
/// is what lets us manufacture realistic multi-candidate RIBs for synthetic
/// vantage routers without simulating BGP message exchange.
class PolicyRoutes {
 public:
  /// Computes routes over `graph` toward `destination`.
  PolicyRoutes(const topology::AsGraph& graph, topology::AsId destination);

  [[nodiscard]] topology::AsId destination() const { return destination_; }

  /// Hop count of the best route of the given class from `as`, or nullopt.
  [[nodiscard]] std::optional<std::size_t> distance(topology::AsId as,
                                                    RouteClass cls) const;

  /// The most preferred class available at `as` (customer < peer <
  /// provider), or nullopt if the destination is unreachable.
  [[nodiscard]] std::optional<RouteClass> best_class(topology::AsId as) const;

  /// Hop count of the overall best route, or nullopt.
  [[nodiscard]] std::optional<std::size_t> best_distance(
      topology::AsId as) const;

  /// AS path (next hop first, destination last) of the route of a given
  /// class from `as`; nullopt if that class has no route. For
  /// as == destination returns an empty path.
  [[nodiscard]] std::optional<AsPath> path(topology::AsId as,
                                           RouteClass cls) const;

  /// AS path of the overall best route.
  [[nodiscard]] std::optional<AsPath> best_path(topology::AsId as) const;

 private:
  static constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t raw_distance(topology::AsId as,
                                         RouteClass cls) const;

  topology::AsId destination_;
  // Per-class distances and next-hop ("parent") pointers.
  std::vector<std::size_t> customer_dist_, peer_dist_, provider_dist_;
  std::vector<topology::AsId> customer_parent_, peer_parent_,
      provider_parent_;
};

}  // namespace lina::routing
