#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "lina/net/ipv4.hpp"
#include "lina/routing/fib.hpp"
#include "lina/routing/rib.hpp"
#include "lina/topology/geo.hpp"

namespace lina::routing {

/// A named measurement router: a RIB collected from its neighbors plus the
/// FIB derived from it — the synthetic counterpart of one Routeviews/RIPE
/// vantage in the paper (Oregon-1 ... Sydney).
class VantageRouter {
 public:
  VantageRouter(std::string name, topology::AsId as_number,
                topology::GeoPoint location)
      : name_(std::move(name)), as_(as_number), location_(location) {}

  // Copies duplicate the RIB and rebuild the FIB lazily in the copy; the
  // once-flag is per-object (it guards the lazy build, not the data).
  VantageRouter(const VantageRouter& other)
      : name_(other.name_),
        as_(other.as_),
        location_(other.location_),
        rib_(other.rib_) {}
  VantageRouter& operator=(const VantageRouter& other) {
    if (this != &other) {
      name_ = other.name_;
      as_ = other.as_;
      location_ = other.location_;
      rib_ = other.rib_;
      fib_ = Fib{};
      fib_once_ = std::make_unique<std::once_flag>();
    }
    return *this;
  }
  VantageRouter(VantageRouter&&) = default;
  VantageRouter& operator=(VantageRouter&&) = default;

  /// Adds a candidate route to the RIB. Invalidates the cached FIB.
  void install(RibRoute route);

  /// Selects best routes for every prefix. Called lazily by lookups but
  /// exposed so bulk loading can pay the cost once. Thread-safe (the lazy
  /// build runs under a std::once_flag), so one router may serve lookups
  /// from many lina::exec workers.
  void build_fib() const;

  [[nodiscard]] std::string_view name() const { return name_; }
  [[nodiscard]] topology::AsId as_number() const { return as_; }
  [[nodiscard]] topology::GeoPoint location() const { return location_; }

  [[nodiscard]] const Rib& rib() const { return rib_; }
  [[nodiscard]] const Fib& fib() const;

  /// The forwarding entry whose prefix is the longest match for `addr`.
  [[nodiscard]] std::optional<std::pair<net::Prefix, FibEntry>> route_for(
      net::Ipv4Address addr) const;

  /// The output port (next-hop AS) for `addr`; nullopt if uncovered.
  [[nodiscard]] std::optional<Port> port_for(net::Ipv4Address addr) const;

  /// Distinct output ports across the FIB.
  [[nodiscard]] std::size_t next_hop_degree() const;

 private:
  std::string name_;
  topology::AsId as_;
  topology::GeoPoint location_;
  Rib rib_;
  mutable Fib fib_;
  // Recreated (never re-armed) on install(); unique_ptr keeps the router
  // movable, which std::once_flag itself is not.
  mutable std::unique_ptr<std::once_flag> fib_once_ =
      std::make_unique<std::once_flag>();
};

}  // namespace lina::routing
