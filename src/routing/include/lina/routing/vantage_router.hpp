#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "lina/net/ipv4.hpp"
#include "lina/routing/fib.hpp"
#include "lina/routing/rib.hpp"
#include "lina/topology/geo.hpp"

namespace lina::routing {

/// A named measurement router: a RIB collected from its neighbors plus the
/// FIB derived from it — the synthetic counterpart of one Routeviews/RIPE
/// vantage in the paper (Oregon-1 ... Sydney).
class VantageRouter {
 public:
  VantageRouter(std::string name, topology::AsId as_number,
                topology::GeoPoint location)
      : name_(std::move(name)), as_(as_number), location_(location) {}

  /// Adds a candidate route to the RIB. Invalidates the cached FIB.
  void install(RibRoute route);

  /// Selects best routes for every prefix. Called lazily by lookups but
  /// exposed so bulk loading can pay the cost once.
  void build_fib() const;

  [[nodiscard]] std::string_view name() const { return name_; }
  [[nodiscard]] topology::AsId as_number() const { return as_; }
  [[nodiscard]] topology::GeoPoint location() const { return location_; }

  [[nodiscard]] const Rib& rib() const { return rib_; }
  [[nodiscard]] const Fib& fib() const;

  /// The forwarding entry whose prefix is the longest match for `addr`.
  [[nodiscard]] std::optional<std::pair<net::Prefix, FibEntry>> route_for(
      net::Ipv4Address addr) const;

  /// The output port (next-hop AS) for `addr`; nullopt if uncovered.
  [[nodiscard]] std::optional<Port> port_for(net::Ipv4Address addr) const;

  /// Distinct output ports across the FIB.
  [[nodiscard]] std::size_t next_hop_degree() const;

 private:
  std::string name_;
  topology::AsId as_;
  topology::GeoPoint location_;
  Rib rib_;
  mutable Fib fib_;
  mutable bool fib_valid_ = false;
};

}  // namespace lina::routing
