#pragma once

#include <filesystem>
#include <optional>
#include <span>
#include <string>

#include "lina/names/content_name.hpp"
#include "lina/names/name_trie.hpp"
#include "lina/routing/rib.hpp"

namespace lina::routing {

class NameFib;

/// A name-based router's forwarding table (Figure 2 right): hierarchical
/// name prefixes mapped to output ports, looked up by longest matching
/// prefix, with the §3.1 displacement rule for renamed content.
///
/// The motivating example: router Q holds [/20thCenturyFox/* -> 5] and
/// [/Disney/* -> 3]. When /20thCenturyFox/StarWarsIV is renamed to
/// /Disney/StarWarsIV because of a distribution-rights transfer — while
/// the bits keep being served from the same place — Q must install the
/// exception [/Disney/StarWarsIV -> 5] iff its LPM ports for the old and
/// new names differ.
/// Immutable snapshot of a NameFib with batch lookups; results are
/// bit-identical to the live table at freeze time. Built by
/// NameFib::freeze().
class FrozenNameFib {
 public:
  FrozenNameFib() = default;
  explicit FrozenNameFib(names::FrozenNameTrie<Port> trie)
      : trie_(std::move(trie)) {}

  /// Longest-matching-prefix port for `name`; nullopt if uncovered.
  [[nodiscard]] std::optional<Port> port_for(
      const names::ContentName& name) const {
    const Port* p = trie_.lookup_value(name);
    if (p == nullptr) return std::nullopt;
    return *p;
  }

  /// Batch LPM: out[i] = port pointer for names[i] (nullptr if uncovered).
  void ports_for_many(std::span<const names::ContentName> names,
                      std::span<const Port*> out) const {
    trie_.lookup_many(names, out);
  }

  [[nodiscard]] std::size_t size() const { return trie_.size(); }
  [[nodiscard]] std::size_t arena_bytes() const { return trie_.arena_bytes(); }

  /// The underlying frozen trie — serialization view for lina::snap.
  [[nodiscard]] const names::FrozenNameTrie<Port>& trie() const {
    return trie_;
  }

  /// Loads the snapshot named `table` from the lina::snap store at `dir`,
  /// falling back to `live.freeze()` (and bumping
  /// lina.snap.fallback_rebuilds) if the snapshot is missing, truncated,
  /// corrupt, or from an incompatible format version. Never throws on a
  /// bad snapshot — corruption always degrades to a rebuild. Defined in
  /// lina::snap; link lina::snap to use.
  [[nodiscard]] static FrozenNameFib load_or_rebuild(
      const std::filesystem::path& dir, const std::string& table,
      const NameFib& live);

 private:
  names::FrozenNameTrie<Port> trie_;
};

class NameFib {
 public:
  /// Announces a name prefix on an output port (overwrites on repeat).
  void announce(const names::ContentName& prefix, Port port);

  /// Withdraws an announcement; returns whether it existed.
  bool withdraw(const names::ContentName& prefix);

  /// Longest-matching-prefix port for `name`; nullopt if uncovered.
  [[nodiscard]] std::optional<Port> port_for(
      const names::ContentName& name) const;

  /// Processes a Figure 2(b) rename: the content formerly reachable as
  /// `from` is now requested as `to`, still served from `from`'s location.
  /// If the LPM ports differ (the content is displaced w.r.t. this
  /// router), installs the exception [to -> port_for(from)] and returns
  /// true (update cost 1); otherwise leaves the table unchanged and
  /// returns false. Throws std::invalid_argument if `from` has no route.
  bool process_rename(const names::ContentName& from,
                      const names::ContentName& to);

  /// Stored entries (announcements + rename exceptions).
  [[nodiscard]] std::size_t size() const { return trie_.size(); }

  /// Exception entries installed by renames so far.
  [[nodiscard]] std::size_t exception_count() const { return exceptions_; }

  /// Entries surviving LPM subsumption (§3.3.2 aggregateability basis).
  [[nodiscard]] std::size_t lpm_compressed_size() const {
    return trie_.lpm_compressed_size();
  }

  /// Immutable batched-lookup snapshot (also refreshes the
  /// lina.fib.name_arena_bytes gauge).
  [[nodiscard]] FrozenNameFib freeze() const;

  /// Bytes retained from the allocator by the live trie arena + edge table.
  [[nodiscard]] std::size_t arena_bytes() const { return trie_.arena_bytes(); }

  /// Deterministic live-table bytes — what the table-size benches report.
  [[nodiscard]] std::size_t table_bytes() const { return trie_.table_bytes(); }

 private:
  names::NameTrie<Port> trie_;
  std::size_t exceptions_ = 0;
};

}  // namespace lina::routing
