#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>

#include "lina/net/frozen_ip_trie.hpp"
#include "lina/net/ip_trie.hpp"
#include "lina/net/ipv4.hpp"
#include "lina/routing/rib.hpp"

namespace lina::routing {

/// One forwarding entry: the selected route's port plus the preference
/// attributes needed to compare routes *across* prefixes (best-port
/// forwarding over an address set picks the address whose route the router
/// prefers most, §3.3.1).
struct FibEntry {
  Port port = 0;
  RouteClass route_class = RouteClass::kProvider;
  std::uint32_t path_length = 0;
  std::uint32_t med = 0;

  friend bool operator==(const FibEntry&, const FibEntry&) = default;
};

class Fib;

/// Returns true if entry `a` is strictly preferred over `b` when choosing
/// which member of an address set to forward toward (mirrors
/// `route_preferred` minus local-pref, which FIBs do not retain).
[[nodiscard]] bool entry_preferred(const FibEntry& a, const FibEntry& b);

/// An immutable snapshot of a Fib for read-mostly phases: same
/// longest-prefix-match results as the source table at freeze time, plus a
/// software-prefetched batch `entries_for_many` that keeps several
/// independent descents in flight per cache-miss window. Built by
/// Fib::freeze().
class FrozenFib {
 public:
  FrozenFib() = default;
  explicit FrozenFib(net::FrozenIpTrie<FibEntry> trie)
      : trie_(std::move(trie)) {}

  /// Longest-prefix match; nullopt if no entry covers the address.
  [[nodiscard]] std::optional<std::pair<net::Prefix, FibEntry>> lookup(
      net::Ipv4Address addr) const {
    return trie_.lookup(addr);
  }

  /// LPM payload only — no Prefix materialisation; nullptr if uncovered.
  [[nodiscard]] const FibEntry* entry_for(net::Ipv4Address addr) const {
    return trie_.lookup_value(addr);
  }

  /// The forwarding port for an address, or nullopt if uncovered.
  [[nodiscard]] std::optional<Port> port_for(net::Ipv4Address addr) const {
    const FibEntry* e = trie_.lookup_value(addr);
    if (e == nullptr) return std::nullopt;
    return e->port;
  }

  /// Batch LPM: out[i] = entry_for(addrs[i]); sizes must match.
  void entries_for_many(std::span<const net::Ipv4Address> addrs,
                        std::span<const FibEntry*> out) const {
    trie_.lookup_many(addrs, out);
  }

  [[nodiscard]] std::size_t size() const { return trie_.size(); }
  [[nodiscard]] std::size_t arena_bytes() const { return trie_.arena_bytes(); }

  /// The underlying frozen trie — serialization view for lina::snap.
  [[nodiscard]] const net::FrozenIpTrie<FibEntry>& trie() const {
    return trie_;
  }

  /// Loads the snapshot named `table` from the lina::snap store at `dir`,
  /// falling back to `live.freeze()` (and bumping
  /// lina.snap.fallback_rebuilds) if the snapshot is missing, truncated,
  /// corrupt, or from an incompatible format version. Never throws on a
  /// bad snapshot — corruption always degrades to a rebuild. Defined in
  /// lina::snap; link lina::snap to use.
  [[nodiscard]] static FrozenFib load_or_rebuild(
      const std::filesystem::path& dir, const std::string& table,
      const Fib& live);

 private:
  net::FrozenIpTrie<FibEntry> trie_;
};

/// A forwarding information base: longest-prefix-match table from IP
/// prefixes to selected forwarding entries.
class Fib {
 public:
  Fib() = default;

  /// Derives a FIB by running best-route selection on every prefix of the
  /// RIB (§6.2.1 rules).
  static Fib from_rib(const Rib& rib);

  void insert(const net::Prefix& prefix, FibEntry entry);

  /// Longest-prefix match; nullopt if no entry covers the address.
  [[nodiscard]] std::optional<std::pair<net::Prefix, FibEntry>> lookup(
      net::Ipv4Address addr) const;

  /// The forwarding port for an address, or nullopt if uncovered.
  [[nodiscard]] std::optional<Port> port_for(net::Ipv4Address addr) const;

  [[nodiscard]] std::size_t size() const { return trie_.size(); }

  /// Entries surviving longest-prefix-match subsumption; size() divided by
  /// this is the aggregateability of the IP table.
  [[nodiscard]] std::size_t lpm_compressed_size() const {
    return trie_.lpm_compressed_size();
  }

  /// Number of distinct output ports — the "next-hop degree" the paper uses
  /// to explain cross-router differences in update rate (§6.2.2).
  [[nodiscard]] std::size_t next_hop_degree() const;

  /// Immutable batched-lookup snapshot (also refreshes the
  /// lina.fib.arena_bytes gauge).
  [[nodiscard]] FrozenFib freeze() const;

  /// Bytes retained from the allocator by the live trie arena.
  [[nodiscard]] std::size_t arena_bytes() const { return trie_.arena_bytes(); }

  /// Deterministic live-table bytes (live nodes × node size) — what the
  /// table-size benches report.
  [[nodiscard]] std::size_t table_bytes() const { return trie_.table_bytes(); }

  [[nodiscard]] std::size_t live_nodes() const { return trie_.live_nodes(); }

  /// Visits all entries.
  void visit(const std::function<void(const net::Prefix&, const FibEntry&)>&
                 fn) const {
    trie_.visit(fn);
  }

 private:
  net::IpTrie<FibEntry> trie_;
};

}  // namespace lina::routing
