#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <utility>

#include "lina/net/ip_trie.hpp"
#include "lina/net/ipv4.hpp"
#include "lina/routing/rib.hpp"

namespace lina::routing {

/// One forwarding entry: the selected route's port plus the preference
/// attributes needed to compare routes *across* prefixes (best-port
/// forwarding over an address set picks the address whose route the router
/// prefers most, §3.3.1).
struct FibEntry {
  Port port = 0;
  RouteClass route_class = RouteClass::kProvider;
  std::uint32_t path_length = 0;
  std::uint32_t med = 0;

  friend bool operator==(const FibEntry&, const FibEntry&) = default;
};

/// Returns true if entry `a` is strictly preferred over `b` when choosing
/// which member of an address set to forward toward (mirrors
/// `route_preferred` minus local-pref, which FIBs do not retain).
[[nodiscard]] bool entry_preferred(const FibEntry& a, const FibEntry& b);

/// A forwarding information base: longest-prefix-match table from IP
/// prefixes to selected forwarding entries.
class Fib {
 public:
  Fib() = default;

  /// Derives a FIB by running best-route selection on every prefix of the
  /// RIB (§6.2.1 rules).
  static Fib from_rib(const Rib& rib);

  void insert(const net::Prefix& prefix, FibEntry entry);

  /// Longest-prefix match; nullopt if no entry covers the address.
  [[nodiscard]] std::optional<std::pair<net::Prefix, FibEntry>> lookup(
      net::Ipv4Address addr) const;

  /// The forwarding port for an address, or nullopt if uncovered.
  [[nodiscard]] std::optional<Port> port_for(net::Ipv4Address addr) const;

  [[nodiscard]] std::size_t size() const { return trie_.size(); }

  /// Entries surviving longest-prefix-match subsumption; size() divided by
  /// this is the aggregateability of the IP table.
  [[nodiscard]] std::size_t lpm_compressed_size() const {
    return trie_.lpm_compressed_size();
  }

  /// Number of distinct output ports — the "next-hop degree" the paper uses
  /// to explain cross-router differences in update rate (§6.2.2).
  [[nodiscard]] std::size_t next_hop_degree() const;

  /// Visits all entries.
  void visit(const std::function<void(const net::Prefix&, const FibEntry&)>&
                 fn) const {
    trie_.visit(fn);
  }

 private:
  net::IpTrie<FibEntry> trie_;
};

}  // namespace lina::routing
