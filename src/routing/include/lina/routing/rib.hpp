#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "lina/net/ipv4.hpp"
#include "lina/routing/as_path.hpp"
#include "lina/topology/as_graph.hpp"

namespace lina::routing {

/// A forwarding "port". Per the paper's §6.2.2 proxy, the port of a route is
/// its next-hop AS: "we use the next hop AS path attribute as a proxy for
/// the output port".
using Port = topology::AsId;

/// Route-preference class derived from the business relationship of the
/// next hop, standing in for local-preference (the paper found
/// local_preference uniformly 0 in the dumps and substituted inferred AS
/// relationships: customer > peer > provider).
enum class RouteClass : std::uint8_t {
  kCustomer = 0,  // most preferred
  kPeer = 1,
  kProvider = 2,  // least preferred
};

/// One candidate route in a router's RIB.
struct RibRoute {
  net::Prefix prefix;
  AsPath as_path;           // front() is the next hop
  RouteClass route_class = RouteClass::kProvider;
  std::uint32_t local_pref = 0;  // kept for fidelity; uniformly 0 in dumps
  std::uint32_t med = 0;

  [[nodiscard]] Port port() const { return as_path.next_hop(); }
};

/// The paper's route-ranking rules (§6.2.1), applied in priority order:
///   1. higher local-preference — with uniformly zero local-pref this
///      devolves to customer > peer > provider on the inferred relationship;
///   2. shorter AS path;
///   3. smaller MED;
/// plus a deterministic final tie-break on next-hop id so that route
/// selection (and therefore every port comparison downstream) is stable.
/// Returns true if `a` is strictly preferred over `b`.
[[nodiscard]] bool route_preferred(const RibRoute& a, const RibRoute& b);

/// A routing information base: per-prefix candidate route sets, as collected
/// from a router's BGP neighbors.
class Rib {
 public:
  /// Adds a candidate route. Throws if the route's AS path is empty or has
  /// a loop.
  void add(RibRoute route);

  /// All candidates for a prefix (unordered), empty span if none.
  [[nodiscard]] std::span<const RibRoute> candidates(
      const net::Prefix& prefix) const;

  /// The best route for a prefix under `route_preferred`, or nullopt.
  [[nodiscard]] std::optional<RibRoute> best(const net::Prefix& prefix) const;

  /// All prefixes with at least one candidate.
  [[nodiscard]] std::vector<net::Prefix> prefixes() const;

  [[nodiscard]] std::size_t prefix_count() const { return routes_.size(); }
  [[nodiscard]] std::size_t route_count() const { return route_count_; }

 private:
  std::unordered_map<net::Prefix, std::vector<RibRoute>> routes_;
  std::size_t route_count_ = 0;
};

}  // namespace lina::routing
