#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string_view>

#include "lina/routing/rib.hpp"
#include "lina/routing/vantage_router.hpp"

namespace lina::routing {

/// A malformed RIB dump row. The message always carries the dump name and
/// 1-based line number (`<name>:line <n>: <what>`) so a bad row in a
/// multi-megabyte table dump is findable. Derives from
/// std::invalid_argument, which read_rib historically threw.
class RibIoError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Text serialization of RIBs in a Routeviews-style table format
/// (`show ip bgp`-like, one candidate route per line):
///
///   PREFIX|NEXT_HOP_AS|LOCAL_PREF|MED|REL|AS_PATH
///   1.0.0.0/16|7|0|3|customer|7 12 99
///
/// REL is the inferred relationship class of the route's next hop
/// (customer/peer/provider) — the paper's stand-in for local preference
/// (§6.2.1). This is the ingestion path for real router dumps: convert a
/// table dump to this format and build a VantageRouter from it.

/// Writes every candidate route of `rib`.
void write_rib(std::ostream& out, const Rib& rib);

/// Parses routes written by write_rib (or hand-converted dumps); accepts
/// an optional header line starting with "PREFIX". Throws RibIoError on
/// malformed rows, naming `context` (the dump's file name or origin) and
/// the offending line.
[[nodiscard]] Rib read_rib(std::istream& in,
                           std::string_view context = "<rib>");

/// Convenience: a named router built from a parsed dump.
[[nodiscard]] VantageRouter vantage_from_dump(std::istream& in,
                                              std::string name,
                                              topology::AsId as_number,
                                              topology::GeoPoint location);

}  // namespace lina::routing
