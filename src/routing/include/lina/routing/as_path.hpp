#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "lina/topology/as_graph.hpp"

namespace lina::routing {

/// A BGP AS path: the sequence of ASes a route traverses, nearest first
/// (front() is the next-hop AS, back() is the origin AS).
class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<topology::AsId> hops) : hops_(std::move(hops)) {}

  [[nodiscard]] const std::vector<topology::AsId>& hops() const {
    return hops_;
  }
  [[nodiscard]] std::size_t length() const { return hops_.size(); }
  [[nodiscard]] bool empty() const { return hops_.empty(); }

  /// Next-hop AS (the paper's output-port proxy, §6.2.2). Requires
  /// non-empty.
  [[nodiscard]] topology::AsId next_hop() const { return hops_.front(); }

  /// Origin AS. Requires non-empty.
  [[nodiscard]] topology::AsId origin() const { return hops_.back(); }

  [[nodiscard]] bool contains(topology::AsId as) const {
    return std::find(hops_.begin(), hops_.end(), as) != hops_.end();
  }

  /// True iff no AS appears twice (BGP loop prevention invariant).
  [[nodiscard]] bool loop_free() const {
    auto sorted = hops_;
    std::sort(sorted.begin(), sorted.end());
    return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
  }

  /// Renders as "701 3356 15169".
  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (const topology::AsId as : hops_) {
      if (!out.empty()) out.push_back(' ');
      out += std::to_string(as);
    }
    return out;
  }

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<topology::AsId> hops_;
};

}  // namespace lina::routing
