#include "lina/core/back_of_envelope.hpp"

namespace lina::core {

UpdateLoadEstimate device_scale_estimate(double devices, double moves_per_day,
                                         double update_fraction) {
  return {devices, moves_per_day, update_fraction};
}

UpdateLoadEstimate content_scale_estimate(double names, double moves_per_day,
                                          double update_fraction) {
  return {names, moves_per_day, update_fraction};
}

double displaced_entry_fraction(double update_fraction,
                                double time_away_fraction) {
  return update_fraction * time_away_fraction;
}

}  // namespace lina::core
