#include "lina/core/extent.hpp"

namespace lina::core {

ExtentOfMobility analyze_extent(
    std::span<const mobility::DeviceTrace> traces) {
  ExtentOfMobility out;
  for (const mobility::DeviceTrace& trace : traces) {
    if (trace.day_count() == 0) continue;
    double ips = 0, prefixes = 0, ases = 0;
    double ip_trans = 0, prefix_trans = 0, as_trans = 0;
    for (std::size_t day = 0; day < trace.day_count(); ++day) {
      const mobility::DayStats stats = trace.day_stats(day);
      ips += static_cast<double>(stats.distinct_ips);
      prefixes += static_cast<double>(stats.distinct_prefixes);
      ases += static_cast<double>(stats.distinct_ases);
      ip_trans += static_cast<double>(stats.ip_transitions);
      prefix_trans += static_cast<double>(stats.prefix_transitions);
      as_trans += static_cast<double>(stats.as_transitions);
      out.dominant_ip_share.add(stats.dominant_ip_fraction);
      out.dominant_prefix_share.add(stats.dominant_prefix_fraction);
      out.dominant_as_share.add(stats.dominant_as_fraction);
    }
    const auto days = static_cast<double>(trace.day_count());
    out.ips_per_day.add(ips / days);
    out.prefixes_per_day.add(prefixes / days);
    out.ases_per_day.add(ases / days);
    out.ip_transitions_per_day.add(ip_trans / days);
    out.prefix_transitions_per_day.add(prefix_trans / days);
    out.as_transitions_per_day.add(as_trans / days);
  }
  return out;
}

}  // namespace lina::core
