#include "lina/core/extent.hpp"

namespace lina::core {

void ExtentAccumulator::add(const mobility::DeviceTrace& trace) {
  if (trace.day_count() == 0) return;
  double ips = 0, prefixes = 0, ases = 0;
  double ip_trans = 0, prefix_trans = 0, as_trans = 0;
  for (std::size_t day = 0; day < trace.day_count(); ++day) {
    const mobility::DayStats stats = trace.day_stats(day);
    ips += static_cast<double>(stats.distinct_ips);
    prefixes += static_cast<double>(stats.distinct_prefixes);
    ases += static_cast<double>(stats.distinct_ases);
    ip_trans += static_cast<double>(stats.ip_transitions);
    prefix_trans += static_cast<double>(stats.prefix_transitions);
    as_trans += static_cast<double>(stats.as_transitions);
    result_.dominant_ip_share.add(stats.dominant_ip_fraction);
    result_.dominant_prefix_share.add(stats.dominant_prefix_fraction);
    result_.dominant_as_share.add(stats.dominant_as_fraction);
  }
  const auto days = static_cast<double>(trace.day_count());
  result_.ips_per_day.add(ips / days);
  result_.prefixes_per_day.add(prefixes / days);
  result_.ases_per_day.add(ases / days);
  result_.ip_transitions_per_day.add(ip_trans / days);
  result_.prefix_transitions_per_day.add(prefix_trans / days);
  result_.as_transitions_per_day.add(as_trans / days);
}

void ExtentAccumulator::add(std::span<const mobility::DeviceTrace> batch) {
  for (const mobility::DeviceTrace& trace : batch) add(trace);
}

ExtentOfMobility analyze_extent(
    std::span<const mobility::DeviceTrace> traces) {
  ExtentAccumulator accumulator;
  accumulator.add(traces);
  return std::move(accumulator.result());
}

}  // namespace lina::core
