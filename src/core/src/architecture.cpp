#include "lina/core/architecture.hpp"

#include <stdexcept>

#include "lina/core/aggregateability.hpp"
#include "lina/core/back_of_envelope.hpp"
#include "lina/core/extent.hpp"

namespace lina::core {

std::string_view architecture_name(ArchitectureKind kind) {
  switch (kind) {
    case ArchitectureKind::kIndirectionRouting:
      return "indirection routing";
    case ArchitectureKind::kNameResolution:
      return "name resolution";
    case ArchitectureKind::kNameBasedRouting:
      return "name-based routing";
  }
  throw std::invalid_argument("architecture_name: unknown kind");
}

ArchitectureComparison::ArchitectureComparison(
    const routing::SyntheticInternet& internet,
    std::span<const routing::VantageRouter> routers, ComparisonConfig config)
    : internet_(internet),
      routers_(routers),
      config_(config),
      latency_(internet) {}

namespace {

double mean_rate(const std::vector<RouterUpdateStats>& stats) {
  if (stats.empty()) return 0.0;
  double sum = 0.0;
  for (const RouterUpdateStats& s : stats) sum += s.rate();
  return sum / static_cast<double>(stats.size());
}

}  // namespace

std::vector<ArchitectureAssessment> ArchitectureComparison::assess_devices(
    std::span<const mobility::DeviceTrace> traces) const {
  stats::Rng rng(config_.seed, "assess-devices");
  const auto stretch = evaluate_indirection_stretch(
      traces, latency_, config_.stretch_coverage, rng);
  const double mean_home_delay =
      stretch.delay_ms.empty() ? 0.0 : stretch.delay_ms.quantile(0.5);

  const DeviceUpdateCostEvaluator evaluator(routers_);
  const auto update_stats = evaluator.evaluate(traces);
  const double nbr_rate = mean_rate(update_stats);

  const auto extent = analyze_extent(traces);
  const double away_share =
      extent.dominant_ip_share.empty()
          ? 0.0
          : 1.0 - extent.dominant_ip_share.quantile(0.5);

  const auto base_prefixes =
      static_cast<double>(internet_.all_prefixes().size());
  const auto population = static_cast<double>(traces.size());

  std::vector<ArchitectureAssessment> out;
  // Indirection: one home-agent update per event; every data packet
  // detours via the home, adding roughly the home->mobile leg.
  out.push_back({ArchitectureKind::kIndirectionRouting, 1.0, mean_home_delay,
                 0.0, base_prefixes});
  // Name resolution: one resolver update per event; direct data path; one
  // resolution round trip at connection setup.
  out.push_back({ArchitectureKind::kNameResolution, 1.0, 0.0,
                 config_.resolver_rtt_ms, base_prefixes});
  // Name-based routing: a fraction of all routers updates per event; zero
  // stretch; each router carries an extra entry per currently displaced
  // device (§6.2 back-of-the-envelope).
  out.push_back(
      {ArchitectureKind::kNameBasedRouting,
       nbr_rate * static_cast<double>(routers_.size()), 0.0, 0.0,
       base_prefixes +
           displaced_entry_fraction(nbr_rate, away_share) * population});
  return out;
}

std::vector<ArchitectureAssessment> ArchitectureComparison::assess_content(
    std::span<const mobility::ContentTrace> traces,
    strategy::StrategyKind strategy_kind) const {
  const ContentUpdateCostEvaluator evaluator(routers_);
  const auto update_stats = evaluator.evaluate(traces, strategy_kind);
  const double nbr_rate = mean_rate(update_stats);

  const auto aggregate = evaluate_aggregateability(routers_, traces);
  double mean_lpm_entries = 0.0;
  for (const AggregateabilityResult& r : aggregate) {
    mean_lpm_entries += static_cast<double>(r.lpm_entries);
  }
  if (!aggregate.empty()) {
    mean_lpm_entries /= static_cast<double>(aggregate.size());
  }

  const auto base_prefixes =
      static_cast<double>(internet_.all_prefixes().size());

  std::vector<ArchitectureAssessment> out;
  // Indirection via a content home/rendezvous: one update per event; all
  // retrievals detour via the rendezvous (charge the median inter-AS
  // delay of the synthetic plane as the detour proxy).
  out.push_back({ArchitectureKind::kIndirectionRouting, 1.0,
                 config_.resolver_rtt_ms, 0.0, base_prefixes});
  out.push_back({ArchitectureKind::kNameResolution, 1.0, 0.0,
                 config_.resolver_rtt_ms, base_prefixes});
  out.push_back({ArchitectureKind::kNameBasedRouting,
                 nbr_rate * static_cast<double>(routers_.size()), 0.0, 0.0,
                 mean_lpm_entries});
  return out;
}

}  // namespace lina::core
