#include "lina/core/aggregateability.hpp"

#include "lina/names/name_trie.hpp"
#include "lina/strategy/forwarding_strategy.hpp"
#include "lina/strategy/port_oracle.hpp"

namespace lina::core {

std::vector<AggregateabilityResult> evaluate_aggregateability(
    std::span<const routing::VantageRouter> routers,
    std::span<const mobility::ContentTrace> traces) {
  std::vector<AggregateabilityResult> results;
  results.reserve(routers.size());
  for (const routing::VantageRouter& router : routers) {
    const strategy::CachingFibOracle oracle(router.fib());
    names::NameTrie<routing::Port> table;
    for (const mobility::ContentTrace& trace : traces) {
      const auto addrs = trace.final_addresses();
      if (addrs.empty()) continue;
      const auto best = strategy::best_entry(oracle, addrs);
      if (!best.has_value()) continue;
      table.insert(trace.name(), best->port);
    }
    results.push_back({std::string(router.name()), table.size(),
                       table.lpm_compressed_size()});
  }
  return results;
}

}  // namespace lina::core
