#include "lina/core/aggregateability.hpp"

#include "lina/exec/parallel.hpp"
#include "lina/names/name_trie.hpp"
#include "lina/strategy/forwarding_strategy.hpp"
#include "lina/strategy/port_oracle.hpp"

namespace lina::core {

std::vector<AggregateabilityResult> evaluate_aggregateability(
    std::span<const routing::VantageRouter> routers,
    std::span<const mobility::ContentTrace> traces) {
  // Each router builds its own name table, so the per-vantage loop fans
  // out across the pool; results land back in router order.
  return exec::parallel_map(routers.size(), [&](std::size_t r) {
    const routing::VantageRouter& router = routers[r];
    const strategy::CachingFibOracle oracle(router.fib());
    names::NameTrie<routing::Port> table;
    for (const mobility::ContentTrace& trace : traces) {
      const auto addrs = trace.final_addresses();
      if (addrs.empty()) continue;
      const auto best = strategy::best_entry(oracle, addrs);
      if (!best.has_value()) continue;
      table.insert(trace.name(), best->port);
    }
    return AggregateabilityResult{std::string(router.name()), table.size(),
                                  table.lpm_compressed_size()};
  });
}

}  // namespace lina::core
