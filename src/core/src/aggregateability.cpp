#include "lina/core/aggregateability.hpp"

#include "lina/exec/parallel.hpp"
#include "lina/strategy/forwarding_strategy.hpp"

namespace lina::core {

AggregateabilityAccumulator::AggregateabilityAccumulator(
    std::span<const routing::VantageRouter> routers) {
  states_.reserve(routers.size());
  for (const routing::VantageRouter& router : routers) {
    states_.push_back(std::make_unique<RouterState>(
        RouterState{&router, strategy::FrozenFibOracle(router.fib()), {}}));
  }
}

void AggregateabilityAccumulator::accumulate(
    std::span<const mobility::ContentTrace> batch) {
  // Routers own disjoint state, so the per-vantage loop fans out across
  // the pool; within a router, names insert in catalog order exactly as
  // the one-shot evaluation would.
  exec::parallel_for(states_.size(), [&](std::size_t r) {
    RouterState& state = *states_[r];
    for (const mobility::ContentTrace& trace : batch) {
      const auto addrs = trace.final_addresses();
      if (addrs.empty()) continue;
      const auto best = strategy::best_entry(state.oracle, addrs);
      if (!best.has_value()) continue;
      state.table.insert(trace.name(), best->port);
    }
  });
}

std::vector<AggregateabilityResult> AggregateabilityAccumulator::finish()
    const {
  std::vector<AggregateabilityResult> results;
  results.reserve(states_.size());
  for (const auto& state : states_) {
    results.push_back(AggregateabilityResult{
        std::string(state->router->name()), state->table.size(),
        state->table.lpm_compressed_size(), state->table.table_bytes()});
  }
  return results;
}

std::vector<AggregateabilityResult> evaluate_aggregateability(
    std::span<const routing::VantageRouter> routers,
    std::span<const mobility::ContentTrace> traces) {
  AggregateabilityAccumulator accumulator(routers);
  accumulator.accumulate(traces);
  return accumulator.finish();
}

}  // namespace lina::core
