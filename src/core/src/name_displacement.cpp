#include "lina/core/name_displacement.hpp"

#include <stdexcept>
#include <unordered_set>

#include "lina/routing/name_fib.hpp"
#include "lina/strategy/forwarding_strategy.hpp"
#include "lina/strategy/port_oracle.hpp"

namespace lina::core {

std::vector<RenameEvent> generate_rename_events(
    std::span<const mobility::ContentTrace> catalog, std::size_t count,
    stats::Rng& rng) {
  // Candidate subdomains (depth >= 3), apex pool (depth 2), and the set of
  // names already taken (renaming onto an existing name would be a
  // collision, not a transfer).
  std::vector<const mobility::ContentTrace*> subdomains;
  std::vector<names::ContentName> apexes;
  std::unordered_set<names::ContentName> taken;
  for (const mobility::ContentTrace& trace : catalog) {
    taken.insert(trace.name());
    if (trace.final_addresses().empty()) continue;
    if (trace.name().depth() >= 3) {
      subdomains.push_back(&trace);
    } else if (trace.name().depth() == 2) {
      apexes.push_back(trace.name());
    }
  }
  if (subdomains.empty() || apexes.size() < 2) return {};

  std::vector<RenameEvent> events;
  events.reserve(count);
  for (std::size_t attempts = 0; events.size() < count && attempts < count * 40;
       ++attempts) {
    const auto& source = *subdomains[rng.index(subdomains.size())];
    const names::ContentName& apex = apexes[rng.index(apexes.size())];
    if (apex.is_prefix_of(source.name())) continue;  // same hierarchy
    // The item keeps its identity under the new owner; disambiguate when
    // the new hierarchy already uses that label.
    names::ContentName target =
        apex.child(std::string(source.name().components().back()));
    if (taken.contains(target)) {
      target = apex.child(std::string(source.name().components().back()) +
                          "-" +
                          std::string(source.name().components()[1]));
    }
    if (!taken.insert(target).second) continue;  // still colliding: skip
    events.push_back({source.name(), target});
  }
  return events;
}

std::vector<RenameDisplacementResult> evaluate_rename_displacement(
    std::span<const routing::VantageRouter> routers,
    std::span<const mobility::ContentTrace> catalog,
    std::span<const RenameEvent> events) {
  std::vector<RenameDisplacementResult> results;
  results.reserve(routers.size());
  for (const routing::VantageRouter& router : routers) {
    const strategy::CachingFibOracle oracle(router.fib());

    // Seed the name FIB: every catalog name announced on its best port.
    routing::NameFib fib;
    for (const mobility::ContentTrace& trace : catalog) {
      const auto addrs = trace.final_addresses();
      if (addrs.empty()) continue;
      const auto best = strategy::best_entry(oracle, addrs);
      if (!best.has_value()) continue;
      fib.announce(trace.name(), best->port);
    }

    RenameDisplacementResult result;
    result.updates.router = std::string(router.name());
    result.fib_entries_before = fib.size();
    for (const RenameEvent& event : events) {
      if (!fib.port_for(event.from).has_value()) continue;
      ++result.updates.events;
      if (fib.process_rename(event.from, event.to)) {
        ++result.updates.updates;
      }
    }
    result.fib_entries_after = fib.size();
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace lina::core
