#include "lina/core/fib_size.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "lina/exec/parallel.hpp"

namespace lina::core {

namespace {

constexpr routing::Port kNoRoutePort =
    std::numeric_limits<routing::Port>::max();

/// The visit active at `hour`, or nullptr past the end of the trace.
const mobility::DeviceVisit* visit_at(const mobility::DeviceTrace& trace,
                                      double hour) {
  const auto visits = trace.visits();
  if (visits.empty()) return nullptr;
  // First visit starting after `hour`, then step back one.
  const auto it = std::upper_bound(
      visits.begin(), visits.end(), hour,
      [](double h, const mobility::DeviceVisit& v) {
        return h < v.start_hour;
      });
  if (it == visits.begin()) return nullptr;
  const mobility::DeviceVisit* visit = &*(it - 1);
  if (hour >= visit->start_hour + visit->duration_hours + 1e-9)
    return nullptr;
  return visit;
}

}  // namespace

std::vector<DisplacedEntryTimeline> evaluate_displaced_entries(
    std::span<const routing::VantageRouter> routers,
    std::span<const mobility::DeviceTrace> traces,
    double sample_interval_hours) {
  if (traces.empty())
    throw std::invalid_argument("evaluate_displaced_entries: no traces");
  if (sample_interval_hours <= 0.0)
    throw std::invalid_argument(
        "evaluate_displaced_entries: non-positive interval");

  // The scan only ever asks for ports of home addresses and visit
  // addresses, and every router needs the same set — so collect the
  // distinct addresses once (first-seen order keeps this deterministic)
  // and resolve them per router with one batched pass over a frozen FIB
  // snapshot instead of memoizing live-trie walks inside the hot loop.
  double horizon = 0.0;
  std::vector<net::Ipv4Address> homes;
  homes.reserve(traces.size());
  std::vector<net::Ipv4Address> distinct;
  std::unordered_map<std::uint32_t, std::uint32_t> addr_index;
  const auto index_of = [&](net::Ipv4Address addr) {
    const auto [it, inserted] = addr_index.try_emplace(
        addr.value(), static_cast<std::uint32_t>(distinct.size()));
    if (inserted) distinct.push_back(addr);
    return it->second;
  };
  for (const mobility::DeviceTrace& trace : traces) {
    homes.push_back(trace.dominant_address());
    index_of(trace.dominant_address());
    for (const mobility::DeviceVisit& visit : trace.visits()) {
      index_of(visit.address);
      horizon = std::max(horizon, visit.start_hour + visit.duration_hours);
    }
  }

  // Per-vantage timelines are independent; fan out across the pool and
  // return them in router order. `addr_index` is read-only from here on.
  return exec::parallel_map(routers.size(), [&](std::size_t r) {
    const routing::VantageRouter& router = routers[r];
    DisplacedEntryTimeline timeline;
    timeline.router = std::string(router.name());
    timeline.device_count = traces.size();

    const routing::FrozenFib fib = router.fib().freeze();
    std::vector<const routing::FibEntry*> hits(distinct.size());
    fib.entries_for_many(distinct, hits);
    std::vector<routing::Port> ports(distinct.size(), kNoRoutePort);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      if (hits[i] != nullptr) ports[i] = hits[i]->port;
    }
    const auto port_of = [&](net::Ipv4Address addr) {
      return ports[addr_index.at(addr.value())];
    };

    double displaced_sum = 0.0;
    std::size_t sample_count = 0;
    for (double hour = 0.0; hour < horizon - 1e-9;
         hour += sample_interval_hours) {
      std::size_t displaced = 0;
      for (std::size_t d = 0; d < traces.size(); ++d) {
        const mobility::DeviceVisit* visit = visit_at(traces[d], hour);
        if (visit == nullptr) continue;
        if (port_of(visit->address) != port_of(homes[d])) ++displaced;
      }
      timeline.samples.emplace_back(hour, displaced);
      timeline.peak = std::max(timeline.peak, displaced);
      displaced_sum += static_cast<double>(displaced);
      ++sample_count;
    }
    timeline.mean_fraction =
        sample_count == 0
            ? 0.0
            : displaced_sum / (static_cast<double>(sample_count) *
                               static_cast<double>(traces.size()));
    return timeline;
  });
}

}  // namespace lina::core
