#include "lina/core/update_cost.hpp"

#include <limits>

#include "lina/exec/parallel.hpp"
#include "lina/prof/prof.hpp"
#include "lina/strategy/port_oracle.hpp"

namespace lina::core {

namespace {

/// Port value reserved for "no covering prefix" so that uncovered addresses
/// still participate in the displacement comparison.
constexpr routing::Port kNoRoutePort =
    std::numeric_limits<routing::Port>::max();

}  // namespace

DeviceUpdateCostEvaluator::DeviceUpdateCostEvaluator(
    std::span<const routing::VantageRouter> routers)
    : routers_(routers),
      port_memos_(routers.size()),
      frozen_fibs_(routers.size()) {}

std::vector<RouterUpdateStats> DeviceUpdateCostEvaluator::evaluate(
    std::span<const mobility::DeviceTrace> traces) const {
  return evaluate_filtered(traces, 0.0,
                           std::numeric_limits<double>::infinity());
}

std::vector<RouterUpdateStats> DeviceUpdateCostEvaluator::evaluate_day(
    std::span<const mobility::DeviceTrace> traces, std::size_t day) const {
  const double begin = static_cast<double>(day) * 24.0;
  return evaluate_filtered(traces, begin, begin + 24.0);
}

std::vector<RouterUpdateStats> DeviceUpdateCostEvaluator::evaluate_filtered(
    std::span<const mobility::DeviceTrace> traces, double begin_hour,
    double end_hour) const {
  PROF_SPAN("lina.core.update_cost");
  // Routers are independent tallies, so they fan out across the pool and
  // land back in router order. The port memo outlives this call: the
  // 20-day sweep asks about the same (router, address) pairs every day.
  return exec::parallel_map(routers_.size(), [&](std::size_t r) {
    const routing::VantageRouter& router = routers_[r];
    auto& memo = port_memos_[r];
    if (!frozen_fibs_[r].has_value()) frozen_fibs_[r] = router.fib().freeze();
    const routing::FrozenFib& fib = *frozen_fibs_[r];
    RouterUpdateStats tally{std::string(router.name()), 0, 0};
    const auto port_of = [&](net::Ipv4Address addr) {
      return memo.get_or_build(addr.value(), [&] {
        return fib.port_for(addr).value_or(kNoRoutePort);
      });
    };
    for (const mobility::DeviceTrace& trace : traces) {
      for (const mobility::DeviceMobilityEvent& event : trace.events()) {
        if (event.hour < begin_hour || event.hour >= end_hour) continue;
        ++tally.events;
        if (port_of(event.from) != port_of(event.to)) ++tally.updates;
      }
    }
    return tally;
  });
}

void DeviceUpdateCostEvaluator::accumulate(
    std::span<const mobility::DeviceTrace> traces,
    std::vector<RouterUpdateStats>& tallies) const {
  if (tallies.empty()) {
    tallies.reserve(routers_.size());
    for (const routing::VantageRouter& router : routers_) {
      tallies.push_back(RouterUpdateStats{std::string(router.name()), 0, 0});
    }
  }
  if (tallies.size() != routers_.size()) {
    throw std::invalid_argument(
        "DeviceUpdateCostEvaluator::accumulate: tally vector does not match "
        "the router set");
  }
  const std::vector<RouterUpdateStats> batch = evaluate_filtered(
      traces, 0.0, std::numeric_limits<double>::infinity());
  for (std::size_t r = 0; r < tallies.size(); ++r) {
    tallies[r].events += batch[r].events;
    tallies[r].updates += batch[r].updates;
  }
}

ContentUpdateCostEvaluator::ContentUpdateCostEvaluator(
    std::span<const routing::VantageRouter> routers)
    : routers_(routers) {}

namespace {

/// Shared §3.3.1 replay: each principal's snapshot sequence goes through a
/// per-(router, principal) strategy instance; changes after the first
/// observation count as updates. Works for any trace type exposing
/// snapshots() whose elements carry `.addresses`.
template <typename Traces>
std::vector<RouterUpdateStats> evaluate_snapshot_series(
    std::span<const routing::VantageRouter> routers, const Traces& traces,
    strategy::StrategyKind kind) {
  // Each router replays the traces through its own strategy/oracle pair,
  // so routers parallelize cleanly; results come back in router order.
  return exec::parallel_map(routers.size(), [&](std::size_t r) {
    const routing::VantageRouter& router = routers[r];
    RouterUpdateStats tally{std::string(router.name()), 0, 0};
    const strategy::FrozenFibOracle oracle(router.fib());
    const auto strat = strategy::make_strategy(kind);
    for (const auto& trace : traces) {
      strat->reset();
      bool first = true;
      for (const auto& snapshot : trace.snapshots()) {
        const bool updated = strat->observe(oracle, snapshot.addresses);
        if (!first) {
          ++tally.events;
          if (updated) ++tally.updates;
        }
        first = false;
      }
    }
    return tally;
  });
}

}  // namespace

std::vector<RouterUpdateStats> ContentUpdateCostEvaluator::evaluate(
    std::span<const mobility::ContentTrace> traces,
    strategy::StrategyKind kind) const {
  return evaluate_snapshot_series(routers_, traces, kind);
}

MultihomedDeviceUpdateCostEvaluator::MultihomedDeviceUpdateCostEvaluator(
    std::span<const routing::VantageRouter> routers)
    : routers_(routers) {}

std::vector<RouterUpdateStats> MultihomedDeviceUpdateCostEvaluator::evaluate(
    std::span<const mobility::MultihomedDeviceTrace> traces,
    strategy::StrategyKind kind) const {
  return evaluate_snapshot_series(routers_, traces, kind);
}

}  // namespace lina::core
