#include "lina/core/update_cost.hpp"

#include <limits>
#include <unordered_map>

#include "lina/strategy/port_oracle.hpp"

namespace lina::core {

namespace {

/// Port value reserved for "no covering prefix" so that uncovered addresses
/// still participate in the displacement comparison.
constexpr routing::Port kNoRoutePort =
    std::numeric_limits<routing::Port>::max();

}  // namespace

DeviceUpdateCostEvaluator::DeviceUpdateCostEvaluator(
    std::span<const routing::VantageRouter> routers)
    : routers_(routers) {}

std::vector<RouterUpdateStats> DeviceUpdateCostEvaluator::evaluate(
    std::span<const mobility::DeviceTrace> traces) const {
  return evaluate_filtered(traces, 0.0,
                           std::numeric_limits<double>::infinity());
}

std::vector<RouterUpdateStats> DeviceUpdateCostEvaluator::evaluate_day(
    std::span<const mobility::DeviceTrace> traces, std::size_t day) const {
  const double begin = static_cast<double>(day) * 24.0;
  return evaluate_filtered(traces, begin, begin + 24.0);
}

std::vector<RouterUpdateStats> DeviceUpdateCostEvaluator::evaluate_filtered(
    std::span<const mobility::DeviceTrace> traces, double begin_hour,
    double end_hour) const {
  std::vector<RouterUpdateStats> stats;
  stats.reserve(routers_.size());
  for (const routing::VantageRouter& router : routers_) {
    RouterUpdateStats tally{std::string(router.name()), 0, 0};
    std::unordered_map<std::uint32_t, routing::Port> port_cache;
    const auto port_of = [&](net::Ipv4Address addr) {
      const auto [it, inserted] = port_cache.try_emplace(addr.value());
      if (inserted) {
        it->second = router.port_for(addr).value_or(kNoRoutePort);
      }
      return it->second;
    };
    for (const mobility::DeviceTrace& trace : traces) {
      for (const mobility::DeviceMobilityEvent& event : trace.events()) {
        if (event.hour < begin_hour || event.hour >= end_hour) continue;
        ++tally.events;
        if (port_of(event.from) != port_of(event.to)) ++tally.updates;
      }
    }
    stats.push_back(std::move(tally));
  }
  return stats;
}

ContentUpdateCostEvaluator::ContentUpdateCostEvaluator(
    std::span<const routing::VantageRouter> routers)
    : routers_(routers) {}

namespace {

/// Shared §3.3.1 replay: each principal's snapshot sequence goes through a
/// per-(router, principal) strategy instance; changes after the first
/// observation count as updates. Works for any trace type exposing
/// snapshots() whose elements carry `.addresses`.
template <typename Traces>
std::vector<RouterUpdateStats> evaluate_snapshot_series(
    std::span<const routing::VantageRouter> routers, const Traces& traces,
    strategy::StrategyKind kind) {
  std::vector<RouterUpdateStats> stats;
  stats.reserve(routers.size());
  for (const routing::VantageRouter& router : routers) {
    RouterUpdateStats tally{std::string(router.name()), 0, 0};
    const strategy::CachingFibOracle oracle(router.fib());
    const auto strat = strategy::make_strategy(kind);
    for (const auto& trace : traces) {
      strat->reset();
      bool first = true;
      for (const auto& snapshot : trace.snapshots()) {
        const bool updated = strat->observe(oracle, snapshot.addresses);
        if (!first) {
          ++tally.events;
          if (updated) ++tally.updates;
        }
        first = false;
      }
    }
    stats.push_back(std::move(tally));
  }
  return stats;
}

}  // namespace

std::vector<RouterUpdateStats> ContentUpdateCostEvaluator::evaluate(
    std::span<const mobility::ContentTrace> traces,
    strategy::StrategyKind kind) const {
  return evaluate_snapshot_series(routers_, traces, kind);
}

MultihomedDeviceUpdateCostEvaluator::MultihomedDeviceUpdateCostEvaluator(
    std::span<const routing::VantageRouter> routers)
    : routers_(routers) {}

std::vector<RouterUpdateStats> MultihomedDeviceUpdateCostEvaluator::evaluate(
    std::span<const mobility::MultihomedDeviceTrace> traces,
    strategy::StrategyKind kind) const {
  return evaluate_snapshot_series(routers_, traces, kind);
}

}  // namespace lina::core
