#include "lina/core/latency_model.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "lina/exec/parallel.hpp"
#include "lina/routing/policy_routing.hpp"
#include "lina/topology/geo.hpp"

namespace lina::core {

using topology::AsId;

namespace {
constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
}

LatencyModel::LatencyModel(const routing::SyntheticInternet& internet,
                           LatencyConfig config)
    : internet_(internet), config_(config) {}

const std::vector<std::size_t>& LatencyModel::bfs_from(AsId source) const {
  return bfs_cache_.get_or_build(source, [&] {
    const auto& graph = internet_.graph();
    std::vector<std::size_t> dist(graph.as_count(), kUnreached);
    dist[source] = 0;
    std::deque<AsId> queue{source};
    while (!queue.empty()) {
      const AsId u = queue.front();
      queue.pop_front();
      for (const auto& link : graph.links(u)) {
        if (dist[link.neighbor] == kUnreached) {
          dist[link.neighbor] = dist[u] + 1;
          queue.push_back(link.neighbor);
        }
      }
    }
    return dist;
  });
}

std::size_t LatencyModel::physical_as_hops(AsId from, AsId to) const {
  if (from >= internet_.graph().as_count() ||
      to >= internet_.graph().as_count())
    throw std::out_of_range("LatencyModel::physical_as_hops");
  const std::size_t d = bfs_from(from)[to];
  if (d == kUnreached)
    throw std::logic_error("LatencyModel: AS graph disconnected");
  return d;
}

std::optional<std::size_t> LatencyModel::policy_distance(AsId from,
                                                         AsId to) const {
  return policy_cache_.get_or_build(to, [&] {
    const routing::PolicyRoutes routes(internet_.graph(), to);
    std::vector<std::optional<std::size_t>> dists(
        internet_.graph().as_count());
    for (AsId u = 0; u < internet_.graph().as_count(); ++u) {
      dists[u] = routes.best_distance(u);
    }
    return dists;
  })[from];
}

std::optional<std::size_t> LatencyModel::policy_as_hops(AsId from,
                                                        AsId to) const {
  if (from >= internet_.graph().as_count() ||
      to >= internet_.graph().as_count())
    throw std::out_of_range("LatencyModel::policy_as_hops");
  if (from == to) return 0;
  return policy_distance(from, to);
}

std::optional<double> LatencyModel::one_way_delay_ms(AsId from,
                                                     AsId to) const {
  const auto hops = policy_as_hops(from, to);
  if (!hops.has_value()) return std::nullopt;
  const double propagation = topology::propagation_delay_ms(
      internet_.graph().location(from), internet_.graph().location(to),
      config_.inflation);
  return std::max(config_.min_delay_ms,
                  propagation + 2.0 * config_.access_ms +
                      config_.per_hop_ms * static_cast<double>(*hops));
}

namespace {

/// Per-trace partial of the Figure-10 analysis; merged in trace order so
/// the reduction is independent of how traces were sharded across workers.
struct StretchPartial {
  std::vector<double> delay_ms;
  std::vector<double> policy_hops;
  std::vector<double> physical_hops;
  std::optional<double> away_time_share;
  std::size_t pairs_total = 0;
  std::size_t pairs_sampled = 0;
};

StretchPartial evaluate_one_trace(const mobility::DeviceTrace& trace,
                                  const LatencyModel& model, double coverage,
                                  stats::Rng rng) {
  StretchPartial partial;
  if (trace.visits().empty()) return partial;
  const AsId home = trace.dominant_as();
  const net::Ipv4Address home_addr = trace.dominant_address();

  double away_time = 0.0;
  double total_time = 0.0;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_pairs;
  for (const mobility::DeviceVisit& visit : trace.visits()) {
    total_time += visit.duration_hours;
    const std::size_t physical =
        visit.as == home ? 0 : model.physical_as_hops(home, visit.as);
    if (physical >= 2) away_time += visit.duration_hours;

    // Each distinct (dominant, current) address pair contributes one
    // sample, as in §6.3.2.
    if (visit.address == home_addr) continue;
    if (!seen_pairs.emplace(home_addr.value(), visit.address.value())
             .second) {
      continue;
    }
    ++partial.pairs_total;
    partial.physical_hops.push_back(static_cast<double>(physical));
    if (!rng.chance(coverage)) continue;  // iPlane had no prediction
    const auto hops = model.policy_as_hops(home, visit.as);
    const auto delay = model.one_way_delay_ms(home, visit.as);
    if (!hops.has_value() || !delay.has_value()) continue;
    ++partial.pairs_sampled;
    partial.policy_hops.push_back(static_cast<double>(*hops));
    partial.delay_ms.push_back(*delay);
  }
  if (total_time > 0.0) partial.away_time_share = away_time / total_time;
  return partial;
}

}  // namespace

void IndirectionStretchAccumulator::accumulate(
    std::span<const mobility::DeviceTrace> batch) {
  // Trace t draws its iPlane-coverage coins from the counter-based
  // substream rng.split(t) — a pure function of the caller's seed and the
  // global trace index t — so the sampled pair set, and therefore every
  // distribution below, is bit-identical at any thread count and any
  // batching (including the serial, one-shot path).
  const std::size_t base = next_index_;
  const std::vector<StretchPartial> partials = exec::parallel_map(
      batch.size(), [&](std::size_t t) {
        return evaluate_one_trace(batch[t], model_, coverage_,
                                  rng_.split(base + t));
      });
  next_index_ += batch.size();

  for (const StretchPartial& partial : partials) {
    for (const double d : partial.delay_ms) result_.delay_ms.add(d);
    for (const double h : partial.policy_hops) result_.policy_hops.add(h);
    for (const double h : partial.physical_hops)
      result_.physical_hops.add(h);
    if (partial.away_time_share.has_value())
      result_.away_time_share.add(*partial.away_time_share);
    result_.pairs_total += partial.pairs_total;
    result_.pairs_sampled += partial.pairs_sampled;
  }
}

IndirectionStretchResult evaluate_indirection_stretch(
    std::span<const mobility::DeviceTrace> traces, const LatencyModel& model,
    double coverage, stats::Rng& rng) {
  IndirectionStretchAccumulator accumulator(model, coverage, rng);
  accumulator.accumulate(traces);
  return std::move(accumulator.result());
}

}  // namespace lina::core
