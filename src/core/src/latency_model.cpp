#include "lina/core/latency_model.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <stdexcept>

#include "lina/routing/policy_routing.hpp"
#include "lina/topology/geo.hpp"

namespace lina::core {

using topology::AsId;

namespace {
constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
}

LatencyModel::LatencyModel(const routing::SyntheticInternet& internet,
                           LatencyConfig config)
    : internet_(internet), config_(config) {}

const std::vector<std::size_t>& LatencyModel::bfs_from(AsId source) const {
  const auto it = bfs_cache_.find(source);
  if (it != bfs_cache_.end()) return it->second;

  const auto& graph = internet_.graph();
  std::vector<std::size_t> dist(graph.as_count(), kUnreached);
  dist[source] = 0;
  std::deque<AsId> queue{source};
  while (!queue.empty()) {
    const AsId u = queue.front();
    queue.pop_front();
    for (const auto& link : graph.links(u)) {
      if (dist[link.neighbor] == kUnreached) {
        dist[link.neighbor] = dist[u] + 1;
        queue.push_back(link.neighbor);
      }
    }
  }
  return bfs_cache_.emplace(source, std::move(dist)).first->second;
}

std::size_t LatencyModel::physical_as_hops(AsId from, AsId to) const {
  if (from >= internet_.graph().as_count() ||
      to >= internet_.graph().as_count())
    throw std::out_of_range("LatencyModel::physical_as_hops");
  const std::size_t d = bfs_from(from)[to];
  if (d == kUnreached)
    throw std::logic_error("LatencyModel: AS graph disconnected");
  return d;
}

std::optional<std::size_t> LatencyModel::policy_distance(AsId from,
                                                         AsId to) const {
  auto it = policy_cache_.find(to);
  if (it == policy_cache_.end()) {
    const routing::PolicyRoutes routes(internet_.graph(), to);
    std::vector<std::optional<std::size_t>> dists(
        internet_.graph().as_count());
    for (AsId u = 0; u < internet_.graph().as_count(); ++u) {
      dists[u] = routes.best_distance(u);
    }
    it = policy_cache_.emplace(to, std::move(dists)).first;
  }
  return it->second[from];
}

std::optional<std::size_t> LatencyModel::policy_as_hops(AsId from,
                                                        AsId to) const {
  if (from >= internet_.graph().as_count() ||
      to >= internet_.graph().as_count())
    throw std::out_of_range("LatencyModel::policy_as_hops");
  if (from == to) return 0;
  return policy_distance(from, to);
}

std::optional<double> LatencyModel::one_way_delay_ms(AsId from,
                                                     AsId to) const {
  const auto hops = policy_as_hops(from, to);
  if (!hops.has_value()) return std::nullopt;
  const double propagation = topology::propagation_delay_ms(
      internet_.graph().location(from), internet_.graph().location(to),
      config_.inflation);
  return std::max(config_.min_delay_ms,
                  propagation + 2.0 * config_.access_ms +
                      config_.per_hop_ms * static_cast<double>(*hops));
}

IndirectionStretchResult evaluate_indirection_stretch(
    std::span<const mobility::DeviceTrace> traces, const LatencyModel& model,
    double coverage, stats::Rng& rng) {
  IndirectionStretchResult result;
  for (const mobility::DeviceTrace& trace : traces) {
    if (trace.visits().empty()) continue;
    const AsId home = trace.dominant_as();
    const net::Ipv4Address home_addr = trace.dominant_address();

    double away_time = 0.0;
    double total_time = 0.0;
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen_pairs;
    for (const mobility::DeviceVisit& visit : trace.visits()) {
      total_time += visit.duration_hours;
      const std::size_t physical = visit.as == home
                                       ? 0
                                       : model.physical_as_hops(home,
                                                                visit.as);
      if (physical >= 2) away_time += visit.duration_hours;

      // Each distinct (dominant, current) address pair contributes one
      // sample, as in §6.3.2.
      if (visit.address == home_addr) continue;
      if (!seen_pairs
               .emplace(home_addr.value(), visit.address.value())
               .second) {
        continue;
      }
      ++result.pairs_total;
      result.physical_hops.add(static_cast<double>(physical));
      if (!rng.chance(coverage)) continue;  // iPlane had no prediction
      const auto hops = model.policy_as_hops(home, visit.as);
      const auto delay = model.one_way_delay_ms(home, visit.as);
      if (!hops.has_value() || !delay.has_value()) continue;
      ++result.pairs_sampled;
      result.policy_hops.add(static_cast<double>(*hops));
      result.delay_ms.add(*delay);
    }
    if (total_time > 0.0) {
      result.away_time_share.add(away_time / total_time);
    }
  }
  return result;
}

}  // namespace lina::core
