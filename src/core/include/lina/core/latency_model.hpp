#pragma once

#include <optional>
#include <span>
#include <vector>

#include "lina/exec/memo.hpp"
#include "lina/mobility/device_trace.hpp"
#include "lina/routing/synthetic_internet.hpp"
#include "lina/stats/cdf.hpp"
#include "lina/stats/rng.hpp"

namespace lina::core {

/// The iPlane substitute (DESIGN.md §1): predicts the one-way delay and AS
/// hop count between two ASes of the synthetic Internet.
///
/// Delay = great-circle propagation between the AS locations (light in
/// fiber, with a route-inflation factor) + a per-AS-hop processing/queueing
/// term along the valley-free policy route. The physical AS-hop distance
/// (shortest path on the undirected AS graph, ignoring policy) reproduces
/// the paper's §6.3.2 lower-bound technique.
struct LatencyConfig {
  double per_hop_ms = 10.0;   // processing + intra-AS traversal per hop
  double inflation = 1.6;     // geographic route-inflation factor
  double access_ms = 10.0;    // last-mile access latency, charged per end
  double min_delay_ms = 0.5;  // floor for same-metro pairs
};

class LatencyModel {
 public:
  explicit LatencyModel(const routing::SyntheticInternet& internet,
                        LatencyConfig config = {});

  /// Shortest AS-hop count on the physical (policy-free) AS graph.
  [[nodiscard]] std::size_t physical_as_hops(topology::AsId from,
                                             topology::AsId to) const;

  /// AS-hop count of the valley-free policy route, or nullopt if none.
  [[nodiscard]] std::optional<std::size_t> policy_as_hops(
      topology::AsId from, topology::AsId to) const;

  /// Modeled one-way delay along the policy route, or nullopt if none.
  [[nodiscard]] std::optional<double> one_way_delay_ms(
      topology::AsId from, topology::AsId to) const;

  [[nodiscard]] const LatencyConfig& config() const { return config_; }

 private:
  [[nodiscard]] const std::vector<std::size_t>& bfs_from(
      topology::AsId source) const;
  [[nodiscard]] std::optional<std::size_t> policy_distance(
      topology::AsId from, topology::AsId to) const;

  const routing::SyntheticInternet& internet_;
  LatencyConfig config_;
  // Striped-shared-mutex memoizers (lina::exec): one model instance is
  // safely shared by parallel workers; entries build exactly once per key.
  exec::Memo<topology::AsId, std::vector<std::size_t>> bfs_cache_;
  // Per-destination best policy distances from every AS.
  exec::Memo<topology::AsId, std::vector<std::optional<std::size_t>>>
      policy_cache_;
};

/// The §6.3 displacement-from-home analysis.
struct IndirectionStretchResult {
  /// Figure 10: one-way delay H -> M for the sampled (covered) pairs.
  stats::EmpiricalCdf delay_ms;
  /// AS hops of the predicted (policy) route — the paper's iPlane median 4.
  stats::EmpiricalCdf policy_hops;
  /// AS hops of the physical shortest path — the paper's lower bound
  /// (median 2).
  stats::EmpiricalCdf physical_hops;
  /// Per user: fraction of the day spent at ASes >= 2 physical AS hops
  /// from the dominant AS (the paper's "around 25%" key finding).
  stats::EmpiricalCdf away_time_share;

  std::size_t pairs_total = 0;
  std::size_t pairs_sampled = 0;  // pairs the 5%-coverage model answered
};

/// Replays every trace, pairs each visited location with the user's
/// dominant ("home") location, samples pairs at `coverage` (iPlane answered
/// only ~5% of pairs), and builds the Figure-10 distributions.
///
/// Traces are evaluated in parallel (lina::exec); trace t draws its
/// coverage coins from the substream rng.split(t), so the result is
/// bit-identical at any thread count for a given rng seed.
[[nodiscard]] IndirectionStretchResult evaluate_indirection_stretch(
    std::span<const mobility::DeviceTrace> traces, const LatencyModel& model,
    double coverage, stats::Rng& rng);

/// Batched form of evaluate_indirection_stretch for streamed workloads:
/// feed user-ordered batches of any size. Trace t (global index across
/// every batch fed so far) still draws from rng.split(t) and partials are
/// still folded in global trace order, so the result is bit-identical to
/// the one-shot call — and to itself at any batch size or thread count.
class IndirectionStretchAccumulator {
 public:
  IndirectionStretchAccumulator(const LatencyModel& model, double coverage,
                                const stats::Rng& rng)
      : model_(model), coverage_(coverage), rng_(rng) {}

  void accumulate(std::span<const mobility::DeviceTrace> batch);

  [[nodiscard]] IndirectionStretchResult& result() { return result_; }

 private:
  const LatencyModel& model_;
  double coverage_;
  stats::Rng rng_;  // only split() is used; the copy never draws
  std::size_t next_index_ = 0;
  IndirectionStretchResult result_;
};

}  // namespace lina::core
