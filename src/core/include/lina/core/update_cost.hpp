#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lina/exec/memo.hpp"
#include "lina/mobility/content_trace.hpp"
#include "lina/mobility/device_multihoming.hpp"
#include "lina/mobility/device_trace.hpp"
#include "lina/routing/vantage_router.hpp"
#include "lina/strategy/forwarding_strategy.hpp"

namespace lina::core {

/// Per-router update-cost tally: how many of the workload's mobility events
/// forced this router to change its forwarding state. `rate()` is the
/// y-axis of the paper's Figures 8, 11(b) and 11(c).
struct RouterUpdateStats {
  std::string router;
  std::size_t events = 0;
  std::size_t updates = 0;

  [[nodiscard]] double rate() const {
    return events == 0 ? 0.0
                       : static_cast<double>(updates) /
                             static_cast<double>(events);
  }
};

/// Evaluates the name-based-routing update cost of *device* mobility (§6.2):
/// a mobility event from address a to address b induces an update at router
/// R iff R's longest-prefix-match port for a differs from that for b
/// (the §3.1 "displacement" condition, with the §6.2.2 next-hop-as-port
/// proxy). Addresses outside R's FIB count as a distinct "no route" port.
class DeviceUpdateCostEvaluator {
 public:
  explicit DeviceUpdateCostEvaluator(
      std::span<const routing::VantageRouter> routers);

  /// Update rate per router over every event of every trace.
  [[nodiscard]] std::vector<RouterUpdateStats> evaluate(
      std::span<const mobility::DeviceTrace> traces) const;

  /// Update rate per router restricted to events in day `day` — the unit of
  /// the paper's 20-day time-sensitivity analysis.
  [[nodiscard]] std::vector<RouterUpdateStats> evaluate_day(
      std::span<const mobility::DeviceTrace> traces, std::size_t day) const;

  /// Streamed form: folds a user-ordered batch into persistent per-router
  /// tallies (`tallies` empty on the first call → initialized to one entry
  /// per router). Event/update counts are order-independent integer sums,
  /// so feeding the workload in any batching reproduces evaluate()
  /// bit-for-bit while holding only one batch resident.
  void accumulate(std::span<const mobility::DeviceTrace> traces,
                  std::vector<RouterUpdateStats>& tallies) const;

 private:
  [[nodiscard]] std::vector<RouterUpdateStats> evaluate_filtered(
      std::span<const mobility::DeviceTrace> traces, double begin_hour,
      double end_hour) const;

  std::span<const routing::VantageRouter> routers_;
  // One longest-prefix-match port memo per router, persistent across
  // evaluate/evaluate_day calls: the 20-day sensitivity sweep re-queries
  // the same addresses every day, so the trie walk is paid once per
  // (router, address). Memos are thread-safe, so routers fan out across
  // the lina::exec pool while sharing the evaluator.
  mutable std::vector<exec::Memo<std::uint32_t, routing::Port>> port_memos_;
  // Lazily-built frozen FIB snapshot per router, so memo misses walk the
  // flat preorder arena rather than the live trie. Slot r is only touched
  // by the worker evaluating router r (parallel_map partitions by index),
  // and FIBs are immutable for the evaluator's lifetime.
  mutable std::vector<std::optional<routing::FrozenFib>> frozen_fibs_;
};

/// Evaluates the update cost of *content* mobility (§7.2) under a chosen
/// forwarding strategy: each trace's snapshot sequence is replayed through
/// a per-(router, name) strategy instance; an event counts as an update at
/// a router iff the strategy's forwarding state changed.
class ContentUpdateCostEvaluator {
 public:
  explicit ContentUpdateCostEvaluator(
      std::span<const routing::VantageRouter> routers);

  [[nodiscard]] std::vector<RouterUpdateStats> evaluate(
      std::span<const mobility::ContentTrace> traces,
      strategy::StrategyKind kind) const;

 private:
  std::span<const routing::VantageRouter> routers_;
};

/// Evaluates the update cost of *multihomed* device mobility (§3.3 applied
/// to devices): the device exposes an address set that evolves over time;
/// the chosen forwarding strategy decides which set changes are updates.
class MultihomedDeviceUpdateCostEvaluator {
 public:
  explicit MultihomedDeviceUpdateCostEvaluator(
      std::span<const routing::VantageRouter> routers);

  [[nodiscard]] std::vector<RouterUpdateStats> evaluate(
      std::span<const mobility::MultihomedDeviceTrace> traces,
      strategy::StrategyKind kind) const;

 private:
  std::span<const routing::VantageRouter> routers_;
};

}  // namespace lina::core
