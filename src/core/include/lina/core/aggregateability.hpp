#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lina/mobility/content_trace.hpp"
#include "lina/names/name_trie.hpp"
#include "lina/routing/vantage_router.hpp"
#include "lina/strategy/port_oracle.hpp"

namespace lina::core {

/// Per-router forwarding-table compaction achieved by longest-prefix
/// matching over the hierarchical content name space (§3.3.2, Figure 12).
struct AggregateabilityResult {
  std::string router;
  std::size_t complete_entries = 0;  // one per content name with a route
  std::size_t lpm_entries = 0;       // after subsumption
  std::size_t table_bytes = 0;       // deterministic live-table footprint

  /// The paper's aggregateability metric: complete / LPM table size.
  [[nodiscard]] double ratio() const {
    return lpm_entries == 0
               ? 0.0
               : static_cast<double>(complete_entries) /
                     static_cast<double>(lpm_entries);
  }
};

/// Builds, per router, the complete name-based forwarding table over the
/// catalog's final address sets under best-port forwarding, then counts the
/// entries longest-prefix matching subsumes (an entry whose port equals its
/// nearest stored ancestor's port is redundant, Figure 3).
[[nodiscard]] std::vector<AggregateabilityResult> evaluate_aggregateability(
    std::span<const routing::VantageRouter> routers,
    std::span<const mobility::ContentTrace> traces);

/// Batched form for streamed catalogs: feed the traces in catalog order in
/// batches of any size; resident state is each router's name table (one
/// entry per routable name) plus its port-oracle cache — never the
/// snapshot history. Insertion order matches the one-shot function, so
/// finish() is bit-identical to evaluate_aggregateability.
class AggregateabilityAccumulator {
 public:
  explicit AggregateabilityAccumulator(
      std::span<const routing::VantageRouter> routers);

  void accumulate(std::span<const mobility::ContentTrace> batch);

  [[nodiscard]] std::vector<AggregateabilityResult> finish() const;

 private:
  struct RouterState {
    const routing::VantageRouter* router;
    strategy::FrozenFibOracle oracle;
    names::NameTrie<routing::Port> table;
  };

  std::vector<std::unique_ptr<RouterState>> states_;
};

}  // namespace lina::core
