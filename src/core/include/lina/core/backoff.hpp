#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace lina::core {

/// Capped exponential retransmission backoff for control-plane operations
/// (registrations, lookups, update relays, interest retransmissions) —
/// shared by every simulator that retries under injected faults. The
/// failure-free simulators never consult it, because nothing ever fails.
///
/// Attempt numbering: attempt 0 is the first transmission; `delay_ms(a)`
/// is the wait before retransmission `a + 1`, growing by `multiplier` per
/// attempt and capped at `max_backoff_ms` so long outages keep being
/// probed at a steady cadence.
struct BackoffPolicy {
  std::size_t max_attempts = 8;  // first try plus up to 7 retransmissions
  double backoff_ms = 100.0;     // delay before the first retransmission
  double multiplier = 2.0;       // backoff growth per retransmission
  double max_backoff_ms = 1000.0;  // cap, so probes keep a steady cadence

  /// A policy a simulator can actually run: at least one attempt,
  /// positive delays, non-shrinking growth.
  [[nodiscard]] bool valid() const {
    return max_attempts > 0 && backoff_ms > 0.0 && multiplier >= 1.0 &&
           max_backoff_ms > 0.0;
  }

  /// Delay before retransmission number `attempt` + 1 (capped
  /// exponential).
  [[nodiscard]] double delay_ms(std::size_t attempt) const {
    return std::min(max_backoff_ms,
                    backoff_ms *
                        std::pow(multiplier, static_cast<double>(attempt)));
  }

  /// Whether the policy permits a retransmission after attempt `attempt`.
  [[nodiscard]] bool attempts_left(std::size_t attempt) const {
    return attempt + 1 < max_attempts;
  }
};

}  // namespace lina::core
