#pragma once

/// Umbrella header for the `lina` library: a quantitative comparison
/// framework for location-independent network architectures, reproducing
/// Gao, Venkataramani, Kurose & Heimlicher, "Towards a Quantitative
/// Comparison of Location-Independent Network Architectures" (SIGCOMM'14).
///
/// Typical flow (see examples/quickstart.cpp):
///   1. Build a routing::SyntheticInternet (AS topology + vantage FIBs).
///   2. Generate workloads: mobility::DeviceWorkloadGenerator and/or
///      mobility::ContentWorkloadGenerator.
///   3. Evaluate: core::DeviceUpdateCostEvaluator,
///      core::ContentUpdateCostEvaluator, core::analyze_extent,
///      core::evaluate_indirection_stretch,
///      core::evaluate_aggregateability — or the one-call
///      core::ArchitectureComparison facade.

#include "lina/analytic/closed_forms.hpp"
#include "lina/analytic/compact_routing.hpp"
#include "lina/analytic/mobility_models.hpp"
#include "lina/analytic/tradeoff.hpp"
#include "lina/core/aggregateability.hpp"
#include "lina/core/architecture.hpp"
#include "lina/core/back_of_envelope.hpp"
#include "lina/core/extent.hpp"
#include "lina/core/fib_size.hpp"
#include "lina/core/latency_model.hpp"
#include "lina/core/name_displacement.hpp"
#include "lina/core/update_cost.hpp"
#include "lina/mobility/content_workload.hpp"
#include "lina/mobility/device_multihoming.hpp"
#include "lina/mobility/device_workload.hpp"
#include "lina/mobility/trace_io.hpp"
#include "lina/names/content_name.hpp"
#include "lina/names/name_trie.hpp"
#include "lina/net/ip_trie.hpp"
#include "lina/net/ipv4.hpp"
#include "lina/routing/name_fib.hpp"
#include "lina/routing/rib_io.hpp"
#include "lina/routing/synthetic_internet.hpp"
#include "lina/stats/render.hpp"
#include "lina/strategy/forwarding_strategy.hpp"
#include "lina/topology/generators.hpp"
