#pragma once

#include <span>
#include <vector>

#include "lina/core/update_cost.hpp"
#include "lina/mobility/content_trace.hpp"
#include "lina/routing/vantage_router.hpp"
#include "lina/stats/rng.hpp"

namespace lina::core {

/// One Figure 2(b) renaming event: content moves across the name hierarchy
/// (a distribution-rights transfer, a site migration to a new brand) while
/// its serving locations stay put.
struct RenameEvent {
  names::ContentName from;
  names::ContentName to;
};

/// Generates cross-hierarchy renames over a content catalog: a subdomain
/// is re-parented under a different apex domain chosen uniformly (e.g.
/// s7.p12.com -> s7.p340.com). Only names with routable final address sets
/// are used; at most `count` events are produced. Deterministic for a
/// given rng state.
[[nodiscard]] std::vector<RenameEvent> generate_rename_events(
    std::span<const mobility::ContentTrace> catalog, std::size_t count,
    stats::Rng& rng);

/// Per-router displacement cost of a rename sequence (the name-space
/// analogue of Figure 8): each router's name FIB is seeded with the
/// catalog's names on their best-port outputs, then the renames are
/// processed in order; an event counts as an update iff the router had to
/// install an exception entry. Also reports how much table state the
/// renames added.
struct RenameDisplacementResult {
  RouterUpdateStats updates;
  std::size_t fib_entries_before = 0;
  std::size_t fib_entries_after = 0;
};

[[nodiscard]] std::vector<RenameDisplacementResult>
evaluate_rename_displacement(std::span<const routing::VantageRouter> routers,
                             std::span<const mobility::ContentTrace> catalog,
                             std::span<const RenameEvent> events);

}  // namespace lina::core
