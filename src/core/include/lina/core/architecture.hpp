#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "lina/core/latency_model.hpp"
#include "lina/core/update_cost.hpp"
#include "lina/mobility/content_trace.hpp"
#include "lina/mobility/device_trace.hpp"
#include "lina/routing/vantage_router.hpp"
#include "lina/strategy/forwarding_strategy.hpp"

namespace lina::core {

/// The three purist approaches to location independence (§2, Figure 1).
enum class ArchitectureKind : std::uint8_t {
  kIndirectionRouting,  // Mobile-IP/GSM style home agent
  kNameResolution,      // DNS/GNS style extra-network resolver
  kNameBasedRouting,    // TRIAD/ROFL/NDN style routing on names
};

[[nodiscard]] std::string_view architecture_name(ArchitectureKind kind);

/// A side-by-side cost-benefit assessment of one architecture on one
/// workload, in the paper's three metrics.
struct ArchitectureAssessment {
  ArchitectureKind kind = ArchitectureKind::kIndirectionRouting;

  /// Expected number of *routers* whose state must change per mobility
  /// event. Home agents and resolvers count as one updated node; for
  /// name-based routing this is (mean per-router update rate) x (router
  /// count), i.e. the expected impacted share of the measurement set.
  double nodes_updated_per_event = 0.0;

  /// Mean additive data-path delay over direct routing, in ms (the
  /// triangle-routing detour for indirection; zero otherwise).
  double mean_extra_delay_ms = 0.0;

  /// Extra connection-setup latency, in ms (the resolution round trip for
  /// name-resolution architectures; zero otherwise).
  double connection_setup_ms = 0.0;

  /// Forwarding entries a core router needs for this principal population:
  /// the base prefix table for address-routed designs; one entry per
  /// currently displaced principal on top of that for name-based routing
  /// with devices; per-name entries (after LPM aggregation) for content.
  double forwarding_entries = 0.0;
};

/// Facade combining the evaluators into one comparison — the library's
/// "headline" API used by the quickstart example.
struct ComparisonConfig {
  /// One-way client->resolver latency charged to name resolution.
  double resolver_rtt_ms = 30.0;
  /// iPlane-style prediction coverage for the stretch sampling.
  double stretch_coverage = 0.25;
  std::uint64_t seed = 99;
};

class ArchitectureComparison {
 public:
  ArchitectureComparison(const routing::SyntheticInternet& internet,
                         std::span<const routing::VantageRouter> routers,
                         ComparisonConfig config = {});

  /// Assesses all three architectures on a device-mobility workload.
  [[nodiscard]] std::vector<ArchitectureAssessment> assess_devices(
      std::span<const mobility::DeviceTrace> traces) const;

  /// Assesses all three architectures on a content-mobility workload under
  /// the given forwarding strategy for the name-based case.
  [[nodiscard]] std::vector<ArchitectureAssessment> assess_content(
      std::span<const mobility::ContentTrace> traces,
      strategy::StrategyKind strategy_kind) const;

 private:
  const routing::SyntheticInternet& internet_;
  std::span<const routing::VantageRouter> routers_;
  ComparisonConfig config_;
  LatencyModel latency_;
};

}  // namespace lina::core
