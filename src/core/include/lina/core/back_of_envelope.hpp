#pragma once

namespace lina::core {

/// The paper's §6.2 / §7.3 "back-of-the-envelope" scale projections:
/// absolute router update load and extra forwarding-table state implied by
/// a measured per-event update fraction.
struct UpdateLoadEstimate {
  double principals = 0.0;        // devices or content names worldwide
  double events_per_day = 0.0;    // mobility events per principal per day
  double update_fraction = 0.0;   // fraction of events inducing an update

  /// Aggregate updates a router must absorb per second.
  [[nodiscard]] double updates_per_second() const {
    return principals * events_per_day * update_fraction / 86400.0;
  }
};

/// §6.2: "if 2 billion smartphones change network addresses three (seven)
/// times per day ... and 3% of these events induce an update, the update
/// rate is 2.1K/sec (4.8K/sec)".
[[nodiscard]] UpdateLoadEstimate device_scale_estimate(
    double devices = 2e9, double moves_per_day = 3.0,
    double update_fraction = 0.03);

/// §7.3: "1B content domain names, an update rate of 2/day, and a 0.5%
/// likelihood ... at most 100 updates/sec".
[[nodiscard]] UpdateLoadEstimate content_scale_estimate(
    double names = 1e9, double moves_per_day = 2.0,
    double update_fraction = 0.005);

/// §6.2 forwarding-table estimate: the expected fraction of all devices
/// holding an extra (displaced) forwarding entry at a typical router is
/// (probability a mobility event displaces the device w.r.t. the router) x
/// (fraction of time spent away from the dominant address). The paper
/// combines 3% and 30% into "≈1%".
[[nodiscard]] double displaced_entry_fraction(double update_fraction = 0.03,
                                              double time_away_fraction = 0.3);

}  // namespace lina::core
