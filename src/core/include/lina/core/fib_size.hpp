#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "lina/mobility/device_trace.hpp"
#include "lina/routing/vantage_router.hpp"

namespace lina::core {

/// Empirical forwarding-table-size analysis for name-based device routing
/// (§6.2 "Forwarding table size").
///
/// Under pure name-based routing, a router can aggregate a device's entry
/// under its home prefix only while the device's current longest-prefix
/// port equals its home port; while *displaced* (§3.1), the router carries
/// an extra host-route exception (Figure 2 left). This evaluator replays
/// the device traces against each router's FIB and samples how many
/// devices are displaced — i.e. how many extra entries the router holds —
/// over time. Its mean matches the paper's back-of-the-envelope
/// (update fraction x away-time share ~= 1%).
struct DisplacedEntryTimeline {
  std::string router;
  /// (hour, number of devices holding an extra entry at that instant).
  std::vector<std::pair<double, std::size_t>> samples;
  std::size_t device_count = 0;
  std::size_t peak = 0;
  double mean_fraction = 0.0;  // mean displaced devices / device count

  /// Extra forwarding entries projected to a population of `devices`.
  [[nodiscard]] double projected_extra_entries(double devices) const {
    return mean_fraction * devices;
  }
};

/// Samples each router's displaced-device count every
/// `sample_interval_hours` across the traces' common time span.
/// A device is displaced w.r.t. a router at time t iff the router's LPM
/// port for the device's current address differs from the port for its
/// dominant (home) address. Throws if traces is empty or the interval is
/// not positive.
[[nodiscard]] std::vector<DisplacedEntryTimeline> evaluate_displaced_entries(
    std::span<const routing::VantageRouter> routers,
    std::span<const mobility::DeviceTrace> traces,
    double sample_interval_hours = 1.0);

}  // namespace lina::core
