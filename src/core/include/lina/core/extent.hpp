#pragma once

#include <span>

#include "lina/mobility/device_trace.hpp"
#include "lina/stats/cdf.hpp"

namespace lina::core {

/// Extent-of-mobility distributions across a device population — the data
/// behind the paper's Figures 6, 7 and 9.
struct ExtentOfMobility {
  // Figure 6: per-user average number of distinct network locations per day.
  stats::EmpiricalCdf ips_per_day;
  stats::EmpiricalCdf prefixes_per_day;
  stats::EmpiricalCdf ases_per_day;

  // Figure 7: per-user average number of transitions per day.
  stats::EmpiricalCdf ip_transitions_per_day;
  stats::EmpiricalCdf prefix_transitions_per_day;
  stats::EmpiricalCdf as_transitions_per_day;

  // Figure 9: per user-day fraction of time at the dominant location.
  stats::EmpiricalCdf dominant_ip_share;
  stats::EmpiricalCdf dominant_prefix_share;
  stats::EmpiricalCdf dominant_as_share;
};

/// Aggregates per-day statistics of every trace into population CDFs.
/// Figure 6/7 samples are per-user (averaged over that user's days);
/// Figure 9 samples are per user-day (the paper pools "all days and all
/// users").
[[nodiscard]] ExtentOfMobility analyze_extent(
    std::span<const mobility::DeviceTrace> traces);

/// Incremental form of analyze_extent for streamed workloads: feed traces
/// (or batches) in user order and finish() — sample insertion order and
/// arithmetic match the one-shot function exactly, so a replayed trace
/// set yields bit-identical CDFs without ever holding the population.
class ExtentAccumulator {
 public:
  void add(const mobility::DeviceTrace& trace);
  void add(std::span<const mobility::DeviceTrace> batch);

  /// The distributions so far; the accumulator may keep accumulating.
  [[nodiscard]] ExtentOfMobility& result() { return result_; }

 private:
  ExtentOfMobility result_;
};

}  // namespace lina::core
