#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

namespace lina::cache {

/// Replacement policy of a MappingCache.
///
///  - kOff:    the cache is disabled. Probes always miss without touching
///             any state and inserts are no-ops, so a simulator holding an
///             off cache is bit-identical to one holding no cache at all.
///  - kTtlLru: TTL + LRU. One recency list; hits move to MRU; capacity
///             evictions take the LRU tail; entries idle longer than the
///             TTL expire on probe (the TTL is a sliding idle bound — a
///             hit re-arms it, matching a map-cache that keeps refreshing
///             mappings in active use; correctness on churn comes from
///             invalidation, not the TTL). This is the policy the Coras
///             et al. analytic model predicts.
///  - kLfu:    O(1) LFU with exact frequency buckets; ties within a
///             frequency bucket break LRU. TTL is honored the same way.
///  - kTwoQ:   the classic 2Q: a FIFO probation queue (A1in) absorbs
///             one-hit wonders, a ghost key queue (A1out) remembers
///             recently demoted keys, and only keys re-referenced from
///             the ghost queue enter the protected LRU main queue (Am).
enum class Policy : std::uint8_t { kOff, kTtlLru, kLfu, kTwoQ };

/// Canonical spelling: "off", "lru", "lfu", "2q".
[[nodiscard]] std::string_view policy_name(Policy policy);

/// Parses a canonical spelling; nullopt on anything else (callers turn
/// that into their own fail-fast diagnostic).
[[nodiscard]] std::optional<Policy> parse_policy(std::string_view text);

/// All spellings parse_policy accepts, for error messages.
[[nodiscard]] std::string known_policies();

/// What a churn notification (a mobility update arriving on the update
/// stream) does to a cached mapping of the moved endpoint:
///  - kInvalidate: drop the entry; the next probe misses and pays a full
///    resolution (LISP SMR-style invalidation).
///  - kRefresh: overwrite the entry's value in place when present (the
///    update carries the new locator, DNS push-style).
/// Either way the event is counted as an invalidation/refresh, never as a
/// capacity eviction.
enum class ChurnAction : std::uint8_t { kInvalidate, kRefresh };

/// Configuration of a mapping cache on a resolution hot path.
struct CacheConfig {
  Policy policy = Policy::kOff;
  std::size_t capacity = 0;  // entries; 0 disables regardless of policy
  double ttl_ms = std::numeric_limits<double>::infinity();
  ChurnAction churn = ChurnAction::kInvalidate;

  /// An enabled cache has a non-off policy AND a non-zero capacity; a
  /// disabled cache is pure pass-through (see Policy::kOff).
  [[nodiscard]] bool enabled() const {
    return policy != Policy::kOff && capacity > 0;
  }
  [[nodiscard]] bool valid() const { return ttl_ms > 0.0; }
};

/// Operation counts of one cache instance. Plain integers (not obs
/// handles) so simulators can carry them in their stats structs and
/// bit-identity tests can compare them directly.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;      // capacity evictions only
  std::uint64_t ttl_expiries = 0;   // idle entries dropped on probe
  std::uint64_t invalidations = 0;  // churn-driven drops
  std::uint64_t refreshes = 0;      // churn-driven in-place updates

  [[nodiscard]] std::uint64_t probes() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return probes() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(probes());
  }

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

}  // namespace lina::cache
