#pragma once

// Fixed-capacity loc/ID mapping cache for the resolution hot paths.
//
// Production loc/ID systems (LISP map-caches, DNS resolvers, Mobile-IP
// binding caches) do not pay a full resolution per session — they cache
// mappings and resolve only on misses. MappingCache is that component:
// a flat-arena, intrusively linked cache in the style of the arena tries
// (src/net/ip_trie.hpp): every slot, list link, frequency bucket and
// ghost entry lives in a contiguous vector addressed by 32-bit indices,
// keys are located by one open-addressed linear-probe table, and probe /
// insert / evict are all O(1) for every policy — no per-entry heap
// allocation, no rehashing after construction.
//
// Policies (see policy.hpp): TTL+LRU (the Coras-modeled baseline), exact
// O(1) LFU with frequency buckets, and the classic 2Q (FIFO probation +
// ghost queue + protected LRU). A disabled cache (policy off or capacity
// zero) holds no storage, always misses, and never counts anything, so
// call sites guarded on `enabled()` are bit-identical to pre-cache code.
//
// Churn contract: a mobility update on the subscribed update stream calls
// invalidate() or refresh() for the moved endpoint. Those are counted
// separately from capacity evictions (CacheStats::invalidations /
// refreshes vs evictions) so the observed eviction pressure is never
// confused with correctness-driven invalidation.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "lina/cache/policy.hpp"
#include "lina/obs/metrics.hpp"
#include "lina/prof/prof.hpp"

namespace lina::cache {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class MappingCache {
  static constexpr std::uint32_t kNil = 0xffffffffu;

 public:
  /// Outcome of one insert: whether a slot was written, and the key a
  /// capacity eviction displaced (tests replay this against reference
  /// policy models).
  struct InsertResult {
    bool inserted = false;
    std::optional<Key> evicted;
  };

  explicit MappingCache(const CacheConfig& config) : config_(config) {
    if (!config.valid())
      throw std::invalid_argument("MappingCache: non-positive ttl_ms");
    if (!config.enabled()) return;
    slots_.resize(config.capacity);
    for (std::uint32_t i = 0; i < slots_.size(); ++i)
      slots_[i].next = i + 1 < slots_.size() ? i + 1 : kNil;
    free_head_ = 0;
    table_.assign(table_size_for(config.capacity), kNil);
    if (config.policy == Policy::kTwoQ) {
      kin_ = std::max<std::size_t>(1, config.capacity / 4);
      ghost_capacity_ = std::max<std::size_t>(1, config.capacity / 2);
      ghosts_.resize(ghost_capacity_);
      for (std::uint32_t i = 0; i < ghosts_.size(); ++i)
        ghosts_[i].next = i + 1 < ghosts_.size() ? i + 1 : kNil;
      ghost_free_head_ = 0;
      ghost_table_.assign(table_size_for(ghost_capacity_), kNil);
    }
  }

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] bool enabled() const { return config_.enabled(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return config_.capacity; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

  /// Arena footprint in bytes (slots + index tables + ghost arena), the
  /// number benches report alongside hit rates.
  [[nodiscard]] std::size_t arena_bytes() const {
    return slots_.capacity() * sizeof(Slot) +
           table_.capacity() * sizeof(std::uint32_t) +
           ghosts_.capacity() * sizeof(GhostSlot) +
           ghost_table_.capacity() * sizeof(std::uint32_t);
  }

  /// Looks the key up at simulation time `now_ms`. A present entry whose
  /// idle TTL lapsed is dropped and counted as a ttl_expiry (then a miss).
  /// A hit re-arms the TTL and promotes per policy (LRU: to MRU; LFU: to
  /// the next frequency bucket; 2Q: Am hits to MRU, A1in hits stay put).
  std::optional<Value> probe(const Key& key, double now_ms) {
    if (!enabled()) return std::nullopt;
    PROF_SPAN("lina.cache.probe");
    obs::metric::cache_probes().add();
    const std::uint32_t slot = find_slot(key);
    if (slot == kNil) return miss();
    if (slots_[slot].expire_ms < now_ms) {
      remove_slot(slot);
      ++stats_.ttl_expiries;
      obs::metric::cache_ttl_expiries().add();
      return miss();
    }
    slots_[slot].expire_ms = now_ms + config_.ttl_ms;
    touch(slot);
    ++stats_.hits;
    obs::metric::cache_hits().add();
    return slots_[slot].value;
  }

  /// Installs the mapping a miss just resolved. Returns the capacity
  /// victim, if making room displaced one. Inserting a key that is
  /// somehow still present updates its value in place (no eviction).
  InsertResult insert(const Key& key, const Value& value, double now_ms) {
    if (!enabled()) return {};
    InsertResult result;
    const std::uint32_t existing = find_slot(key);
    if (existing != kNil) {
      slots_[existing].value = value;
      slots_[existing].expire_ms = now_ms + config_.ttl_ms;
      return result;
    }
    // 2Q admission: keys remembered by the ghost queue go straight to the
    // protected main queue; cold keys start in the FIFO probation queue.
    const bool to_main =
        config_.policy == Policy::kTwoQ && ghost_erase(key);
    if (size_ == config_.capacity) {
      const std::uint32_t victim = pick_victim();
      result.evicted = slots_[victim].key;
      if (config_.policy == Policy::kTwoQ &&
          slots_[victim].queue == kQueueIn) {
        ghost_insert(slots_[victim].key);
      }
      remove_slot(victim);
      ++stats_.evictions;
      obs::metric::cache_evictions().add();
    }
    const std::uint32_t slot = alloc_slot();
    slots_[slot].key = key;
    slots_[slot].value = value;
    slots_[slot].expire_ms = now_ms + config_.ttl_ms;
    table_insert(table_, hash_(key), slot);
    attach_new(slot, to_main);
    ++size_;
    ++stats_.insertions;
    obs::metric::cache_insertions().add();
    result.inserted = true;
    return result;
  }

  /// Churn: drops the mapping if cached. Counted as an invalidation,
  /// never as an eviction. Returns whether an entry was dropped.
  bool invalidate(const Key& key) {
    if (!enabled()) return false;
    const std::uint32_t slot = find_slot(key);
    if (slot == kNil) return false;
    remove_slot(slot);
    ++stats_.invalidations;
    obs::metric::cache_invalidations().add();
    return true;
  }

  /// Churn: overwrites the cached value in place when present (the update
  /// stream carried the new locator). Recency/frequency state is left
  /// untouched — a pushed refresh is not a demand access. Returns whether
  /// an entry was refreshed.
  bool refresh(const Key& key, const Value& value, double now_ms) {
    if (!enabled()) return false;
    const std::uint32_t slot = find_slot(key);
    if (slot == kNil) return false;
    slots_[slot].value = value;
    slots_[slot].expire_ms = now_ms + config_.ttl_ms;
    ++stats_.refreshes;
    obs::metric::cache_refreshes().add();
    return true;
  }

  /// Applies the configured churn action for `key`; `value` is the new
  /// locator a refresh would install.
  void churn(const Key& key, const Value& value, double now_ms) {
    if (config_.churn == ChurnAction::kRefresh) {
      refresh(key, value, now_ms);
    } else {
      invalidate(key);
    }
  }

  /// Churn: drops every cached mapping (a shared-origin move invalidates
  /// the lot). Counted as invalidations. The ghost queue survives — it
  /// holds no mappings, only admission history.
  void invalidate_all() {
    if (!enabled() || size_ == 0) return;
    const std::uint64_t dropped = size_;
    std::fill(table_.begin(), table_.end(), kNil);
    lru_ = {};
    in_ = {};
    buckets_.clear();
    bucket_head_ = kNil;
    bucket_free_head_ = kNil;
    rebuild_free_list();
    size_ = 0;
    stats_.invalidations += dropped;
    obs::metric::cache_invalidations().add(dropped);
  }

  /// True when `key` is cached (TTL ignored); test/diagnostic use only —
  /// does not count as a probe or touch recency.
  [[nodiscard]] bool contains(const Key& key) const {
    return enabled() && find_slot(key) != kNil;
  }

 private:
  // Queue tags (Slot::queue). TTL+LRU and LFU keep everything on kQueueMain.
  static constexpr std::uint8_t kQueueMain = 0;  // LRU list / Am
  static constexpr std::uint8_t kQueueIn = 1;    // 2Q probation FIFO

  struct Slot {
    Key key{};
    Value value{};
    double expire_ms = 0.0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;  // doubles as the free-list link
    std::uint32_t bucket = kNil;  // LFU frequency bucket
    std::uint8_t queue = kQueueMain;
  };

  struct GhostSlot {
    Key key{};
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  /// Intrusive list endpoints over the slot arena. Head is MRU / FIFO
  /// front, tail is the eviction end.
  struct ListHead {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::size_t size = 0;
  };

  /// LFU frequency bucket: ascending-frequency doubly linked list of
  /// buckets, each holding an intrusive member list (head = most recent).
  struct FreqBucket {
    std::uint64_t freq = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;  // doubles as the bucket free-list link
    ListHead members;
  };

  [[nodiscard]] static std::size_t table_size_for(std::size_t entries) {
    std::size_t size = 8;
    while (size < entries * 2) size <<= 1;
    return size;
  }

  std::optional<Value> miss() {
    ++stats_.misses;
    obs::metric::cache_misses().add();
    return std::nullopt;
  }

  // ---- open-addressed index (linear probe, backward-shift delete) ----

  [[nodiscard]] std::uint32_t find_slot(const Key& key) const {
    if (table_.empty()) return kNil;
    const std::size_t mask = table_.size() - 1;
    for (std::size_t pos = hash_(key) & mask;; pos = (pos + 1) & mask) {
      const std::uint32_t slot = table_[pos];
      if (slot == kNil) return kNil;
      if (slots_[slot].key == key) return slot;
    }
  }

  void table_insert(std::vector<std::uint32_t>& table, std::size_t hash,
                    std::uint32_t index) {
    const std::size_t mask = table.size() - 1;
    for (std::size_t pos = hash & mask;; pos = (pos + 1) & mask) {
      if (table[pos] == kNil) {
        table[pos] = index;
        return;
      }
    }
  }

  /// Erases `index` (whose key hashes to `hash`) with the standard
  /// linear-probe backward-shift, so probe chains never need tombstones.
  template <typename SlotVec>
  void table_erase_impl(std::vector<std::uint32_t>& table,
                        const SlotVec& slots, std::size_t hash,
                        std::uint32_t index) {
    const std::size_t mask = table.size() - 1;
    std::size_t pos = hash & mask;
    while (table[pos] != index) pos = (pos + 1) & mask;
    std::size_t hole = pos;
    for (std::size_t next = (hole + 1) & mask; table[next] != kNil;
         next = (next + 1) & mask) {
      const std::size_t ideal = hash_(slots[table[next]].key) & mask;
      // `next` may fill the hole iff its probe path covers the hole:
      // distance(ideal -> next) >= distance(hole -> next).
      if (((next - ideal) & mask) >= ((next - hole) & mask)) {
        table[hole] = table[next];
        hole = next;
      }
    }
    table[hole] = kNil;
  }

  void table_erase(std::vector<std::uint32_t>& table, std::size_t hash,
                   std::uint32_t index) {
    if (&table == &ghost_table_) {
      table_erase_impl(table, ghosts_, hash, index);
    } else {
      table_erase_impl(table, slots_, hash, index);
    }
  }

  // ---- intrusive lists over the slot arena ----

  void list_push_front(ListHead& list, std::uint32_t index) {
    slots_[index].prev = kNil;
    slots_[index].next = list.head;
    if (list.head != kNil) slots_[list.head].prev = index;
    list.head = index;
    if (list.tail == kNil) list.tail = index;
    ++list.size;
  }

  void list_remove(ListHead& list, std::uint32_t index) {
    const std::uint32_t prev = slots_[index].prev;
    const std::uint32_t next = slots_[index].next;
    if (prev != kNil) slots_[prev].next = next; else list.head = next;
    if (next != kNil) slots_[next].prev = prev; else list.tail = prev;
    --list.size;
  }

  // ---- slot arena ----

  std::uint32_t alloc_slot() {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next;
    slots_[slot].prev = slots_[slot].next = kNil;
    slots_[slot].bucket = kNil;
    slots_[slot].queue = kQueueMain;
    return slot;
  }

  void free_slot(std::uint32_t slot) {
    slots_[slot].next = free_head_;
    free_head_ = slot;
  }

  void rebuild_free_list() {
    for (std::uint32_t i = 0; i < slots_.size(); ++i)
      slots_[i].next = i + 1 < slots_.size() ? i + 1 : kNil;
    free_head_ = slots_.empty() ? kNil : 0;
  }

  // ---- policy machinery ----

  /// New entry joins its policy's entry queue.
  void attach_new(std::uint32_t slot, bool two_q_main) {
    switch (config_.policy) {
      case Policy::kTtlLru:
        list_push_front(lru_, slot);
        break;
      case Policy::kLfu:
        bucket_attach(slot, /*freq=*/1);
        break;
      case Policy::kTwoQ:
        if (two_q_main) {
          slots_[slot].queue = kQueueMain;
          list_push_front(lru_, slot);
        } else {
          slots_[slot].queue = kQueueIn;
          list_push_front(in_, slot);
        }
        break;
      case Policy::kOff:
        break;
    }
  }

  /// Promotion on a hit.
  void touch(std::uint32_t slot) {
    switch (config_.policy) {
      case Policy::kTtlLru:
        list_remove(lru_, slot);
        list_push_front(lru_, slot);
        break;
      case Policy::kLfu:
        bucket_promote(slot);
        break;
      case Policy::kTwoQ:
        // A1in hits do not promote (the 2Q paper's correlated-reference
        // guard); Am hits refresh recency.
        if (slots_[slot].queue == kQueueMain) {
          list_remove(lru_, slot);
          list_push_front(lru_, slot);
        }
        break;
      case Policy::kOff:
        break;
    }
  }

  /// The slot a capacity eviction removes (never counts TTL/churn).
  [[nodiscard]] std::uint32_t pick_victim() const {
    switch (config_.policy) {
      case Policy::kTtlLru:
        return lru_.tail;
      case Policy::kLfu:
        return buckets_[bucket_head_].members.tail;
      case Policy::kTwoQ:
        // Over-full probation evicts FIFO (into the ghost queue, handled
        // by insert()); otherwise the protected queue pays.
        if (in_.size > kin_ || lru_.tail == kNil) return in_.tail;
        return lru_.tail;
      case Policy::kOff:
        break;
    }
    return kNil;
  }

  /// Full removal: unlink from its queue, drop the index entry, free the
  /// slot. Shared by TTL expiry, invalidation and eviction.
  void remove_slot(std::uint32_t slot) {
    switch (config_.policy) {
      case Policy::kTtlLru:
        list_remove(lru_, slot);
        break;
      case Policy::kLfu:
        bucket_detach(slot);
        break;
      case Policy::kTwoQ:
        list_remove(slots_[slot].queue == kQueueIn ? in_ : lru_, slot);
        break;
      case Policy::kOff:
        break;
    }
    table_erase(table_, hash_(slots_[slot].key), slot);
    free_slot(slot);
    --size_;
  }

  // ---- LFU frequency buckets ----

  std::uint32_t bucket_alloc(std::uint64_t freq) {
    std::uint32_t index;
    if (bucket_free_head_ != kNil) {
      index = bucket_free_head_;
      bucket_free_head_ = buckets_[index].next;
      buckets_[index] = FreqBucket{};
    } else {
      index = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    }
    buckets_[index].freq = freq;
    return index;
  }

  void bucket_free(std::uint32_t index) {
    const std::uint32_t prev = buckets_[index].prev;
    const std::uint32_t next = buckets_[index].next;
    if (prev != kNil) buckets_[prev].next = next; else bucket_head_ = next;
    if (next != kNil) buckets_[next].prev = prev;
    buckets_[index].next = bucket_free_head_;
    bucket_free_head_ = index;
  }

  /// Links `bucket` immediately after `after` (kNil = front).
  void bucket_link_after(std::uint32_t bucket, std::uint32_t after) {
    buckets_[bucket].prev = after;
    if (after == kNil) {
      buckets_[bucket].next = bucket_head_;
      if (bucket_head_ != kNil) buckets_[bucket_head_].prev = bucket;
      bucket_head_ = bucket;
    } else {
      buckets_[bucket].next = buckets_[after].next;
      if (buckets_[after].next != kNil)
        buckets_[buckets_[after].next].prev = bucket;
      buckets_[after].next = bucket;
    }
  }

  void bucket_attach(std::uint32_t slot, std::uint64_t freq) {
    std::uint32_t bucket = bucket_head_;
    if (bucket == kNil || buckets_[bucket].freq != freq) {
      bucket = bucket_alloc(freq);
      bucket_link_after(bucket, kNil);
    }
    slots_[slot].bucket = bucket;
    list_push_front(buckets_[bucket].members, slot);
  }

  void bucket_detach(std::uint32_t slot) {
    const std::uint32_t bucket = slots_[slot].bucket;
    list_remove(buckets_[bucket].members, slot);
    if (buckets_[bucket].members.size == 0) bucket_free(bucket);
    slots_[slot].bucket = kNil;
  }

  /// Hit: move the slot from frequency f's bucket to f+1's (created and
  /// spliced in after the current bucket when absent).
  void bucket_promote(std::uint32_t slot) {
    const std::uint32_t bucket = slots_[slot].bucket;
    const std::uint64_t next_freq = buckets_[bucket].freq + 1;
    list_remove(buckets_[bucket].members, slot);
    std::uint32_t target = buckets_[bucket].next;
    if (target == kNil || buckets_[target].freq != next_freq) {
      target = bucket_alloc(next_freq);
      bucket_link_after(target, bucket);
    }
    if (buckets_[bucket].members.size == 0) bucket_free(bucket);
    slots_[slot].bucket = target;
    list_push_front(buckets_[target].members, slot);
  }

  // ---- 2Q ghost queue (keys only, FIFO, bounded) ----

  void ghost_insert(const Key& key) {
    if (ghost_size_ == ghost_capacity_) {
      // Drop the oldest ghost.
      const std::uint32_t victim = ghost_lru_.tail;
      ghost_list_remove(victim);
      table_erase(ghost_table_, hash_(ghosts_[victim].key), victim);
      ghosts_[victim].next = ghost_free_head_;
      ghost_free_head_ = victim;
      --ghost_size_;
    }
    const std::uint32_t slot = ghost_free_head_;
    ghost_free_head_ = ghosts_[slot].next;
    ghosts_[slot].key = key;
    ghosts_[slot].prev = kNil;
    ghosts_[slot].next = ghost_lru_.head;
    if (ghost_lru_.head != kNil) ghosts_[ghost_lru_.head].prev = slot;
    ghost_lru_.head = slot;
    if (ghost_lru_.tail == kNil) ghost_lru_.tail = slot;
    table_insert(ghost_table_, hash_(key), slot);
    ++ghost_size_;
  }

  void ghost_list_remove(std::uint32_t index) {
    const std::uint32_t prev = ghosts_[index].prev;
    const std::uint32_t next = ghosts_[index].next;
    if (prev != kNil) ghosts_[prev].next = next; else ghost_lru_.head = next;
    if (next != kNil) ghosts_[next].prev = prev; else ghost_lru_.tail = prev;
  }

  /// Removes `key` from the ghost queue; returns whether it was there
  /// (the 2Q admission signal).
  bool ghost_erase(const Key& key) {
    if (ghost_table_.empty()) return false;
    const std::size_t mask = ghost_table_.size() - 1;
    std::uint32_t found = kNil;
    for (std::size_t pos = hash_(key) & mask;; pos = (pos + 1) & mask) {
      const std::uint32_t slot = ghost_table_[pos];
      if (slot == kNil) return false;
      if (ghosts_[slot].key == key) {
        found = slot;
        break;
      }
    }
    ghost_list_remove(found);
    table_erase(ghost_table_, hash_(key), found);
    ghosts_[found].next = ghost_free_head_;
    ghost_free_head_ = found;
    --ghost_size_;
    return true;
  }

  CacheConfig config_;
  Hash hash_;
  CacheStats stats_;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> table_;
  std::uint32_t free_head_ = kNil;
  std::size_t size_ = 0;

  ListHead lru_;  // TTL+LRU list / 2Q Am / unused by LFU

  // LFU
  std::vector<FreqBucket> buckets_;
  std::uint32_t bucket_head_ = kNil;
  std::uint32_t bucket_free_head_ = kNil;

  // 2Q
  std::size_t kin_ = 0;
  ListHead in_;  // A1in probation FIFO
  std::vector<GhostSlot> ghosts_;
  std::vector<std::uint32_t> ghost_table_;
  ListHead ghost_lru_;  // A1out FIFO (head = newest)
  std::uint32_t ghost_free_head_ = kNil;
  std::size_t ghost_size_ = 0;
  std::size_t ghost_capacity_ = 0;
};

}  // namespace lina::cache
