#include "lina/cache/policy.hpp"

namespace lina::cache {

std::string_view policy_name(Policy policy) {
  switch (policy) {
    case Policy::kOff:
      return "off";
    case Policy::kTtlLru:
      return "lru";
    case Policy::kLfu:
      return "lfu";
    case Policy::kTwoQ:
      return "2q";
  }
  return "unknown";
}

std::optional<Policy> parse_policy(std::string_view text) {
  if (text == "off") return Policy::kOff;
  if (text == "lru") return Policy::kTtlLru;
  if (text == "lfu") return Policy::kLfu;
  if (text == "2q") return Policy::kTwoQ;
  return std::nullopt;
}

std::string known_policies() { return "lru, lfu, 2q, off"; }

}  // namespace lina::cache
