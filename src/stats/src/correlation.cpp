#include "lina/stats/correlation.hpp"

#include <cmath>
#include <stdexcept>

namespace lina::stats {

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("pearson_correlation: size mismatch");
  if (x.size() < 2)
    throw std::invalid_argument("pearson_correlation: need >= 2 points");

  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0)
    throw std::invalid_argument("pearson_correlation: zero variance");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace lina::stats
