#include "lina/stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lina::stats {

LogNormal::LogNormal(double median, double sigma)
    : median_(median), mu_(std::log(median)), sigma_(sigma) {
  if (median <= 0.0) throw std::invalid_argument("LogNormal: median <= 0");
  if (sigma <= 0.0) throw std::invalid_argument("LogNormal: sigma <= 0");
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.normal());
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

BoundedPareto::BoundedPareto(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  if (alpha <= 0.0) throw std::invalid_argument("BoundedPareto: alpha <= 0");
  if (lo <= 0.0 || hi <= lo)
    throw std::invalid_argument("BoundedPareto: need 0 < lo < hi");
}

double BoundedPareto::sample(Rng& rng) const {
  // Inverse CDF of the truncated Pareto.
  const double u = rng.uniform();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

Zipf::Zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Zipf: n == 0");
  pmf_.resize(n);
  cumulative_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    pmf_[k - 1] = 1.0 / std::pow(static_cast<double>(k), s);
    sum += pmf_[k - 1];
  }
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    pmf_[k] /= sum;
    acc += pmf_[k];
    cumulative_[k] = acc;
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin()) + 1;
}

double Zipf::pmf(std::size_t k) const {
  if (k == 0 || k > pmf_.size()) throw std::out_of_range("Zipf::pmf: rank");
  return pmf_[k - 1];
}

std::size_t weighted_index(Rng& rng, const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_index: empty");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("weighted_index: zero total");
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> random_partition(Rng& rng, std::size_t total,
                                          std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("random_partition: parts == 0");
  std::vector<double> weights(parts);
  for (double& w : weights) w = -std::log(std::max(rng.uniform(), 1e-12));
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);

  std::vector<std::size_t> out(parts, 0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    out[i] = static_cast<std::size_t>(
        std::floor(static_cast<double>(total) * weights[i] / sum));
    assigned += out[i];
  }
  // Distribute the rounding remainder one unit at a time.
  for (std::size_t i = 0; assigned < total; i = (i + 1) % parts) {
    ++out[i];
    ++assigned;
  }
  return out;
}

}  // namespace lina::stats
