#include "lina/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace lina::stats {

Summary summarize(std::span<const double> samples) {
  if (samples.empty()) throw std::invalid_argument("summarize: empty sample");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  Summary s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);

  RunningStats acc;
  for (const double x : sorted) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  return s;
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  if (n_ == 0) throw std::logic_error("RunningStats::mean: empty");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ == 0) throw std::logic_error("RunningStats::variance: empty");
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace lina::stats
