#include "lina/stats/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lina::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : samples_(samples.begin(), samples.end()), sorted_(false) {
  ensure_sorted();
}

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::at: empty");
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::quantile: empty");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("EmpiricalCdf::quantile: q out of [0,1]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalCdf::min() const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::min: empty");
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::max: empty");
  ensure_sorted();
  return samples_.back();
}

double EmpiricalCdf::fraction_above(double x) const { return 1.0 - at(x); }

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t max_points) const {
  if (samples_.empty()) return {};
  ensure_sorted();
  const std::size_t points = std::min(max_points, samples_.size());
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = (points == 1)
                         ? 1.0
                         : static_cast<double>(i) /
                               static_cast<double>(points - 1);
    const double x = quantile(q);
    out.emplace_back(x, at(x));
  }
  return out;
}

const std::vector<double>& EmpiricalCdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

}  // namespace lina::stats
