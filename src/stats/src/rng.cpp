#include "lina/stats/rng.hpp"

#include <stdexcept>

namespace lina::stats {

std::uint64_t Rng::mix(std::uint64_t seed, std::string_view label) {
  // FNV-1a over the label folded into the seed, then finalized with a
  // splitmix64 round so nearby seeds and labels diverge.
  std::uint64_t h = 14695981039346656037ULL ^ seed;
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

Rng Rng::fork(std::string_view label) { return Rng(mix(engine_(), label)); }

Rng Rng::split(std::uint64_t task_index) const {
  // splitmix64 over (construction seed, counter); +1 keeps split(0) from
  // cloning the parent stream.
  std::uint64_t h = seed_ + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return Rng(h ^ (h >> 31));
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
  return static_cast<std::size_t>(uniform_int(0, n - 1));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  return std::exponential_distribution<double>(rate)(engine_);
}

std::size_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean < 0");
  if (mean == 0.0) return 0;
  return static_cast<std::size_t>(
      std::poisson_distribution<long>(mean)(engine_));
}

}  // namespace lina::stats
