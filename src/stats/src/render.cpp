#include "lina/stats/render.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace lina::stats {

std::string fmt(double v, int precision) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s.empty() ? "0" : s;
}

std::string pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string heading(std::string_view title) {
  std::string line(title.size(), '=');
  std::string out;
  out += "\n";
  out.append(title);
  out += "\n";
  out += line;
  out += "\n";
  return out;
}

std::string bar_chart(std::span<const std::pair<std::string, double>> rows,
                      std::string_view unit, double scale_max, int width) {
  if (rows.empty()) return "(no data)\n";
  std::size_t label_width = 0;
  double max_val = scale_max;
  for (const auto& [label, value] : rows) {
    label_width = std::max(label_width, label.size());
    if (scale_max <= 0.0) max_val = std::max(max_val, value);
  }
  if (max_val <= 0.0) max_val = 1.0;

  std::ostringstream os;
  for (const auto& [label, value] : rows) {
    const int bars = static_cast<int>(
        std::lround(value / max_val * static_cast<double>(width)));
    os << "  " << label << std::string(label_width - label.size(), ' ')
       << " | " << std::string(static_cast<std::size_t>(std::max(bars, 0)), '#')
       << " " << fmt(value) << unit << "\n";
  }
  return os.str();
}

std::string cdf_table(const EmpiricalCdf& cdf, std::string_view x_label,
                      std::size_t points) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({std::string(x_label), "CDF"});
  for (const auto& [x, f] : cdf.curve(points)) {
    rows.push_back({fmt(x), pct(f, 1)});
  }
  return text_table(rows);
}

std::string multi_cdf_table(
    std::span<const std::pair<std::string, const EmpiricalCdf*>> series,
    std::string_view quantity, std::size_t points) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{std::string("quantile")};
  for (const auto& [name, _] : series) {
    header.push_back(name + " (" + std::string(quantity) + ")");
  }
  rows.push_back(header);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = (points == 1)
                         ? 0.5
                         : static_cast<double>(i) /
                               static_cast<double>(points - 1);
    std::vector<std::string> row{pct(q, 0)};
    for (const auto& [_, cdf] : series) row.push_back(fmt(cdf->quantile(q)));
    rows.push_back(std::move(row));
  }
  return text_table(rows);
}

std::size_t display_width(std::string_view s) {
  // Count UTF-8 code points: every byte except continuation bytes
  // (10xxxxxx). A close-enough terminal-column estimate that keeps
  // multi-byte labels (µs, ≈, accented names) from shearing the table;
  // the previous bytes-based padding misaligned every column after them.
  std::size_t width = 0;
  for (const char c : s) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++width;
  }
  return width;
}

std::string text_table(std::span<const std::vector<std::string>> rows) {
  if (rows.empty()) return "(no data)\n";
  std::size_t cols = 0;
  for (const auto& row : rows) cols = std::max(cols, row.size());
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], display_width(row[c]));
    }
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << "  ";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      os << rows[r][c]
         << std::string(widths[c] - display_width(rows[r][c]) + 2, ' ');
    }
    os << "\n";
    if (r == 0) {
      std::size_t total = 2;
      for (const std::size_t w : widths) total += w + 2;
      os << "  " << std::string(total - 2, '-') << "\n";
    }
  }
  return os.str();
}

Table& Table::header(std::vector<std::string> cells) {
  if (rows_.empty()) {
    rows_.push_back(std::move(cells));
  } else {
    rows_.front() = std::move(cells);
  }
  return *this;
}

Table& Table::append_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::append_row(std::string label, std::span<const double> values,
                         int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(std::move(label));
  for (const double v : values) cells.push_back(fmt(v, precision));
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::str() const { return text_table(rows_); }

}  // namespace lina::stats
