#pragma once

#include <cstddef>
#include <span>

namespace lina::stats {

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

/// Computes a Summary; throws on an empty sample.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Streaming mean/variance accumulator (Welford); useful when samples are
/// produced one at a time inside long simulations.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace lina::stats
