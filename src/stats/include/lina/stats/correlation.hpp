#pragma once

#include <span>

namespace lina::stats {

/// Pearson correlation coefficient between two equally sized samples.
/// Used to reproduce the paper's §6.2 sensitivity analysis, which reports a
/// 0.88 correlation between update rates under two different workloads.
/// Throws if the sizes differ, the samples are shorter than 2, or either
/// sample has zero variance.
[[nodiscard]] double pearson_correlation(std::span<const double> x,
                                         std::span<const double> y);

}  // namespace lina::stats
