#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace lina::stats {

/// Deterministic random-number generator used throughout the library.
///
/// Every stochastic component in `lina` takes an explicit `Rng&` (or a seed)
/// so that experiments are reproducible run-to-run and machine-to-machine.
/// There is deliberately no global generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Constructs a generator whose seed is derived from a label, so that
  /// independent subsystems seeded from the same experiment seed do not
  /// accidentally share streams.
  Rng(std::uint64_t seed, std::string_view label) : Rng(mix(seed, label)) {}

  /// Derives an independent child generator; `label` distinguishes children.
  /// Consumes one draw, so consecutive forks differ.
  [[nodiscard]] Rng fork(std::string_view label);

  /// Derives the `task_index`-th independent substream — counter-based: the
  /// child seed is a pure function of this generator's *construction seed*
  /// and the index, never of how many values have been drawn. This is the
  /// lina::exec determinism primitive: give parallel work item i the
  /// substream split(i) and the result stream is identical no matter how
  /// items are sharded across threads (or run serially).
  [[nodiscard]] Rng split(std::uint64_t task_index) const;

  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  /// Standard-normal variate.
  [[nodiscard]] double normal();

  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Exponential variate with the given rate (> 0).
  [[nodiscard]] double exponential(double rate);

  /// Poisson variate with the given mean (>= 0).
  [[nodiscard]] std::size_t poisson(double mean);

 private:
  static std::uint64_t mix(std::uint64_t seed, std::string_view label);

  std::uint64_t seed_;  // construction seed; the split() stream key
  std::mt19937_64 engine_;
};

}  // namespace lina::stats
