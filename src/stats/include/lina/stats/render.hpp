#pragma once

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lina/stats/cdf.hpp"

namespace lina::stats {

/// Plain-text rendering helpers used by the bench harnesses to print the
/// paper's tables and figures as aligned text tables and ASCII bar charts.
/// Keeping rendering here means every bench binary reports in one style.

/// Renders a labelled horizontal bar chart. `scale_max` of 0 auto-scales to
/// the largest value. Values are printed with `unit` appended.
[[nodiscard]] std::string bar_chart(
    std::span<const std::pair<std::string, double>> rows,
    std::string_view unit = "", double scale_max = 0.0, int width = 48);

/// Renders a CDF as a two-column table (x, cumulative fraction), with an
/// optional header naming the series.
[[nodiscard]] std::string cdf_table(const EmpiricalCdf& cdf,
                                    std::string_view x_label,
                                    std::size_t points = 16);

/// Renders several CDFs side by side at shared quantiles — the textual
/// analogue of the paper's multi-series CDF plots (e.g. IP / prefix / AS).
[[nodiscard]] std::string multi_cdf_table(
    std::span<const std::pair<std::string, const EmpiricalCdf*>> series,
    std::string_view quantity, std::size_t points = 11);

/// Renders a generic aligned table. `rows` are cell strings; the first row
/// is treated as the header.
[[nodiscard]] std::string text_table(
    std::span<const std::vector<std::string>> rows);

/// Formats a double with fixed precision; trims trailing zeros.
[[nodiscard]] std::string fmt(double v, int precision = 3);

/// Formats a fraction as a percentage string, e.g. 0.137 -> "13.7%".
[[nodiscard]] std::string pct(double fraction, int precision = 2);

/// Prints a section heading used by bench binaries.
[[nodiscard]] std::string heading(std::string_view title);

}  // namespace lina::stats
