#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lina/stats/cdf.hpp"

namespace lina::stats {

/// Plain-text rendering helpers used by the bench harnesses to print the
/// paper's tables and figures as aligned text tables and ASCII bar charts.
/// Keeping rendering here means every bench binary reports in one style.

/// Renders a labelled horizontal bar chart. `scale_max` of 0 auto-scales to
/// the largest value. Values are printed with `unit` appended.
[[nodiscard]] std::string bar_chart(
    std::span<const std::pair<std::string, double>> rows,
    std::string_view unit = "", double scale_max = 0.0, int width = 48);

/// Renders a CDF as a two-column table (x, cumulative fraction), with an
/// optional header naming the series.
[[nodiscard]] std::string cdf_table(const EmpiricalCdf& cdf,
                                    std::string_view x_label,
                                    std::size_t points = 16);

/// Renders several CDFs side by side at shared quantiles — the textual
/// analogue of the paper's multi-series CDF plots (e.g. IP / prefix / AS).
[[nodiscard]] std::string multi_cdf_table(
    std::span<const std::pair<std::string, const EmpiricalCdf*>> series,
    std::string_view quantity, std::size_t points = 11);

/// Renders a generic aligned table. `rows` are cell strings; the first row
/// is treated as the header. Cells are aligned on *display* width (UTF-8
/// code points, not bytes), so multi-byte labels and "NaN" cells line up.
[[nodiscard]] std::string text_table(
    std::span<const std::vector<std::string>> rows);

/// Display width of a UTF-8 string: code points, not bytes (continuation
/// bytes do not count). What text_table aligns on.
[[nodiscard]] std::size_t display_width(std::string_view s);

/// Incremental builder for text_table: collects rows and renders on
/// str(). The doubles overload removes the per-bench hand-formatting of
/// numeric rows — a leading label cell followed by uniformly formatted
/// values.
class Table {
 public:
  /// First row; treated as the header by text_table.
  Table& header(std::vector<std::string> cells);

  Table& append_row(std::vector<std::string> cells);

  /// Label + numeric cells formatted via fmt(v, precision); NaN renders
  /// as "NaN", infinities as "inf"/"-inf".
  Table& append_row(std::string label, std::span<const double> values,
                    int precision = 3);

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision; trims trailing zeros. Non-finite
/// values render as "NaN" / "inf" / "-inf".
[[nodiscard]] std::string fmt(double v, int precision = 3);

/// Formats a fraction as a percentage string, e.g. 0.137 -> "13.7%".
[[nodiscard]] std::string pct(double fraction, int precision = 2);

/// Prints a section heading used by bench binaries.
[[nodiscard]] std::string heading(std::string_view title);

}  // namespace lina::stats
