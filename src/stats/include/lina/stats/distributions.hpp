#pragma once

#include <cstddef>
#include <vector>

#include "lina/stats/rng.hpp"

namespace lina::stats {

/// Log-normal sampler parameterized by the *median* and a shape factor
/// (sigma of the underlying normal). Used for heavy-tailed per-user rates:
/// e.g. daily IP-transition counts where the median is ~3 but >20% of users
/// exceed 10.
class LogNormal {
 public:
  LogNormal(double median, double sigma);

  [[nodiscard]] double sample(Rng& rng) const;

  /// P(X <= x) in closed form; used by tests and calibration.
  [[nodiscard]] double cdf(double x) const;

  [[nodiscard]] double median() const { return median_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double median_;
  double mu_;  // log(median)
  double sigma_;
};

/// Bounded Pareto sampler (type-I, truncated) for tail-heavy counts such as
/// subdomain fan-out of popular web properties.
class BoundedPareto {
 public:
  BoundedPareto(double alpha, double lo, double hi);

  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double alpha_;
  double lo_;
  double hi_;
};

/// Zipf distribution over ranks {1..n} with exponent s, sampled by inverse
/// CDF over precomputed cumulative weights. Used for popularity ranking of
/// domains and for skewed location-visit preferences.
class Zipf {
 public:
  Zipf(std::size_t n, double s);

  /// Returns a rank in [1, n].
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Probability of rank k (1-based).
  [[nodiscard]] double pmf(std::size_t k) const;

  [[nodiscard]] std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized cumulative weights
  std::vector<double> pmf_;
};

/// Samples an index according to arbitrary non-negative weights.
/// Throws if the weights are empty or sum to zero.
[[nodiscard]] std::size_t weighted_index(Rng& rng,
                                         const std::vector<double>& weights);

/// Splits `total` into `parts` non-negative integers that sum to `total`,
/// with weights drawn from a symmetric Dirichlet-like stick-breaking scheme;
/// used to split a day among visited locations.
[[nodiscard]] std::vector<std::size_t> random_partition(Rng& rng,
                                                        std::size_t total,
                                                        std::size_t parts);

}  // namespace lina::stats
