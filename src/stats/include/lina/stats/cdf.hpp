#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace lina::stats {

/// Empirical cumulative distribution function over a sample set.
///
/// This is the workhorse behind every CDF figure in the paper reproduction
/// (Figures 6, 7, 9, 10, 11a): build one from per-user or per-domain
/// statistics, then query quantiles or evaluate P(X <= x).
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Builds from a sample; the input is copied and sorted.
  explicit EmpiricalCdf(std::span<const double> samples);

  /// Adds one observation (invalidates nothing; re-sorts lazily).
  void add(double x);

  [[nodiscard]] bool empty() const { return samples_.size() == 0; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  /// P(X <= x).
  [[nodiscard]] double at(double x) const;

  /// q-th quantile, q in [0, 1]; linear interpolation between order
  /// statistics. quantile(0.5) is the median.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Fraction of samples strictly greater than x; convenience for statements
  /// like "20% of users change more than 10 addresses a day".
  [[nodiscard]] double fraction_above(double x) const;

  /// Evenly spaced (x, F(x)) points for plotting / printing, one per sample
  /// quantile; at most `max_points` points.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t max_points = 32) const;

  /// The sorted sample.
  [[nodiscard]] const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace lina::stats
