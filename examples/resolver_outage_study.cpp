// Resolver outage study: what happens to a live session when the
// resolution infrastructure crashes? The same crash is injected into a
// single-resolver deployment and a GNS-style replicated pool; the example
// prints how each rides it out, and what the failure costs in retries.
//
//   $ ./build/examples/resolver_outage_study

#include <iostream>

#include "lina/core/lina.hpp"
#include "lina/sim/failure_plan.hpp"
#include "lina/sim/resolver_pool.hpp"
#include "lina/sim/session.hpp"

int main() {
  using namespace lina;

  const routing::SyntheticInternet internet;
  const sim::ForwardingFabric fabric(internet);
  const auto replicas = sim::ResolverPool::metro_placement(internet, 6);
  const sim::ResolverPool pool(fabric, replicas);

  sim::SessionConfig config;
  config.correspondent = internet.edge_ases()[0];
  config.schedule = {{0.0, internet.edge_ases()[25]},
                     {3000.0, internet.edge_ases()[26]}};  // move mid-outage
  config.duration_ms = 10000.0;
  config.packet_interval_ms = 25.0;
  config.resolver_ttl_ms = 300.0;
  config.resolver_as = replicas.front();
  config.resolver_replicas = replicas;

  // Crash the replica the correspondent prefers (for the single-resolver
  // deployment, the resolver itself) from 2 s to 7 s — spanning the move,
  // so the binding the correspondent holds goes stale while it has no one
  // to ask.
  const topology::AsId preferred =
      pool.nearest_replica(config.correspondent);
  sim::FailurePlan single_crash(7);
  single_crash.resolver_crash(*config.resolver_as, 2000.0, 7000.0);
  sim::FailurePlan replica_crash(7);
  replica_crash.resolver_crash(preferred, 2000.0, 7000.0);

  std::cout << "A 5 s resolver crash spans the device's move at t=3s...\n\n";

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"deployment", "delivered", "lost in window",
                  "recovery (ms)", "retries"});
  struct Run {
    const char* label;
    sim::SimArchitecture arch;
    const sim::FailurePlan* plan;
  };
  for (const Run& run :
       {Run{"1 resolver, healthy", sim::SimArchitecture::kNameResolution,
            nullptr},
        Run{"1 resolver, crashed", sim::SimArchitecture::kNameResolution,
            &single_crash},
        Run{"6 replicas, healthy",
            sim::SimArchitecture::kReplicatedResolution, nullptr},
        Run{"6 replicas, nearest crashed",
            sim::SimArchitecture::kReplicatedResolution, &replica_crash}}) {
    config.failures = run.plan;
    const auto result = sim::simulate_session(fabric, run.arch, config);
    rows.push_back(
        {run.label, stats::pct(result.delivery_ratio(), 1),
         stats::pct(result.failure_loss_fraction(), 1),
         result.recovery_ms.empty()
             ? "-"
             : stats::fmt(result.recovery_ms.quantile(0.5), 0),
         std::to_string(result.control_retries)});
  }
  std::cout << stats::text_table(rows);

  std::cout
      << "\nWith one resolver the correspondent keeps streaming to the "
         "stale\nattachment until the crash heals and the device's "
         "re-registration\nlands. With a replicated pool the first "
         "timed-out lookup fails over\nto the next-nearest live replica, "
         "and on repair the recovered replica\nanti-entropy-syncs from a "
         "peer — the crash barely shows in delivery.\n";
  return 0;
}
