// Device-mobility study: the §4/§6 pipeline on a custom population.
// Generates a workload, characterizes its extent of mobility (Figures
// 6/7/9), measures per-router name-based-routing update cost (Figure 8),
// and quantifies indirection's displacement from home (Figure 10).
//
//   $ ./build/examples/device_mobility_study [users] [days]

#include <cstdlib>
#include <iostream>

#include "lina/core/lina.hpp"

int main(int argc, char** argv) {
  using namespace lina;

  const std::size_t users =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 150;
  const std::size_t days =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 14;

  const routing::SyntheticInternet internet;

  mobility::DeviceWorkloadConfig config;
  config.user_count = users;
  config.days = days;
  const auto traces =
      mobility::DeviceWorkloadGenerator(internet, config).generate();
  std::cout << "Generated " << users << " users x " << days << " days ("
            << [&] {
                 std::size_t visits = 0;
                 for (const auto& t : traces) visits += t.visits().size();
                 return visits;
               }()
            << " visits)\n";

  // Extent of mobility.
  const auto extent = core::analyze_extent(traces);
  std::cout << stats::heading("Extent of mobility (Figures 6/7/9)");
  std::cout << "Median distinct locations/day: "
            << stats::fmt(extent.ips_per_day.quantile(0.5), 2) << " IPs / "
            << stats::fmt(extent.prefixes_per_day.quantile(0.5), 2)
            << " prefixes / "
            << stats::fmt(extent.ases_per_day.quantile(0.5), 2) << " ASes\n";
  std::cout << "Median transitions/day: "
            << stats::fmt(extent.ip_transitions_per_day.quantile(0.5), 2)
            << " IP / "
            << stats::fmt(extent.as_transitions_per_day.quantile(0.5), 2)
            << " AS; users above 10 IP transitions/day: "
            << stats::pct(extent.ip_transitions_per_day.fraction_above(10),
                          1)
            << "\n";
  std::cout << "Median time at dominant IP: "
            << stats::pct(extent.dominant_ip_share.quantile(0.5), 1)
            << ", dominant AS: "
            << stats::pct(extent.dominant_as_share.quantile(0.5), 1) << "\n";

  // Update cost at the vantage routers.
  std::cout << stats::heading(
      "Name-based routing update cost per router (Figure 8)");
  const core::DeviceUpdateCostEvaluator evaluator(internet.vantages());
  std::vector<std::pair<std::string, double>> rows;
  for (const auto& s : evaluator.evaluate(traces)) {
    rows.emplace_back(s.router, s.rate() * 100.0);
  }
  std::cout << stats::bar_chart(rows, "%");

  // Displacement from home.
  std::cout << stats::heading("Displacement from home (Figure 10)");
  const core::LatencyModel latency(internet);
  stats::Rng rng(1, "study");
  const auto stretch =
      core::evaluate_indirection_stretch(traces, latency, 0.25, rng);
  std::cout << "Median one-way H->M delay: "
            << stats::fmt(stretch.delay_ms.quantile(0.5), 1)
            << " ms over policy routes of median "
            << stats::fmt(stretch.policy_hops.quantile(0.5), 1)
            << " AS hops (physical lower bound "
            << stats::fmt(stretch.physical_hops.quantile(0.5), 1) << ")\n";
  std::cout << "Median time >= 2 AS hops from home: "
            << stats::pct(stretch.away_time_share.quantile(0.5), 1) << "\n";
  return 0;
}
