// Content-mobility study: the §7 pipeline on a custom catalog. Generates
// popular and unpopular content traces, measures per-router update cost
// under all three forwarding strategies, and computes forwarding-table
// aggregateability.
//
//   $ ./build/examples/content_mobility_study [domains] [days]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "lina/core/lina.hpp"

int main(int argc, char** argv) {
  using namespace lina;

  const std::size_t domains =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;
  const std::size_t days =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 7;

  const routing::SyntheticInternet internet;

  mobility::ContentWorkloadConfig config;
  config.popular_domains = domains;
  config.unpopular_domains = domains;
  config.days = days;
  const mobility::ContentWorkloadGenerator generator(internet, config);
  const auto catalog = generator.generate();
  std::cout << "Catalog: " << catalog.popular.size() << " popular and "
            << catalog.unpopular.size() << " unpopular names over " << days
            << " days (CDN footprint: " << generator.cdn_pop_ases().size()
            << " PoPs)\n";

  // Mobility intensity (Figure 11a).
  stats::EmpiricalCdf events;
  for (const auto& trace : catalog.popular) events.add(trace.events_per_day());
  std::cout << "Popular content: median "
            << stats::fmt(events.quantile(0.5), 2)
            << " set-changes/day, p90 "
            << stats::fmt(events.quantile(0.9), 2) << ", max "
            << stats::fmt(events.max(), 1) << "\n";

  // Update cost under each strategy (Figures 11b/11c + §3.3.3 extension).
  const core::ContentUpdateCostEvaluator evaluator(internet.vantages());
  std::cout << stats::heading("Update cost by forwarding strategy");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"strategy", "popular worst router", "unpopular worst"});
  for (const auto kind : {strategy::StrategyKind::kControlledFlooding,
                          strategy::StrategyKind::kBestPort,
                          strategy::StrategyKind::kHistoryUnion}) {
    const auto max_rate = [&](const auto& traces) {
      double rate = 0.0;
      for (const auto& s : evaluator.evaluate(traces, kind)) {
        rate = std::max(rate, s.rate());
      }
      return rate;
    };
    rows.push_back({std::string(strategy::strategy_name(kind)),
                    stats::pct(max_rate(catalog.popular), 2),
                    stats::pct(max_rate(catalog.unpopular), 2)});
  }
  std::cout << stats::text_table(rows);

  // Aggregateability (Figure 12).
  std::cout << stats::heading("Forwarding-table aggregateability");
  const auto aggregate = core::evaluate_aggregateability(
      internet.vantages(), catalog.popular);
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& r : aggregate) bars.emplace_back(r.router, r.ratio());
  std::cout << stats::bar_chart(bars, "x");
  std::cout << "\nHigher is better: an N-times-aggregateable table stores "
               "N-fold fewer entries\nthan one per content name.\n";
  return 0;
}
