// Quickstart: build a synthetic Internet, generate a small device-mobility
// workload, and compare the three location-independence architectures on
// the paper's metrics — about thirty lines of library use.
//
//   $ ./build/examples/quickstart

#include <iostream>

#include "lina/core/lina.hpp"

int main() {
  using namespace lina;

  // 1. A policy-routed synthetic Internet with the paper's 12 vantage
  //    routers (defaults: 12 tier-1s, 80 tier-2s, 600 stub ASes).
  const routing::SyntheticInternet internet;
  std::cout << "Internet: " << internet.graph().as_count() << " ASes, "
            << internet.all_prefixes().size() << " prefixes, "
            << internet.vantages().size() << " vantage routers\n";

  // 2. A NomadLog-style device workload (100 users, two weeks).
  mobility::DeviceWorkloadConfig workload;
  workload.user_count = 100;
  workload.days = 14;
  const auto traces =
      mobility::DeviceWorkloadGenerator(internet, workload).generate();

  // 3. One call compares indirection routing, name resolution, and pure
  //    name-based routing on update cost, stretch, and table size.
  const core::ArchitectureComparison comparison(internet,
                                                internet.vantages());
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"architecture", "nodes updated/event", "extra delay (ms)",
                  "setup latency (ms)", "fwd entries/router"});
  for (const auto& a : comparison.assess_devices(traces)) {
    rows.push_back({std::string(core::architecture_name(a.kind)),
                    stats::fmt(a.nodes_updated_per_event, 2),
                    stats::fmt(a.mean_extra_delay_ms, 1),
                    stats::fmt(a.connection_setup_ms, 1),
                    stats::fmt(a.forwarding_entries, 0)});
  }
  std::cout << "\nDevice mobility, three purist architectures:\n"
            << stats::text_table(rows);

  std::cout << "\nReading: indirection pays path stretch, name resolution "
               "pays lookup latency,\nname-based routing pays router "
               "updates and forwarding state. See bench/ for the\nfull "
               "figure-by-figure reproduction.\n";
  return 0;
}
