// Trace pipeline: the data-interchange path a measurement deployment would
// use. Exports a generated device workload as NomadLog CSV (§4 schema) and
// a router's RIB as a Routeviews-style dump, re-imports both, and verifies
// the rebuilt pipeline produces identical update-cost numbers — i.e. the
// library is ready to consume *real* logs and dumps in these formats.
//
//   $ ./build/examples/trace_pipeline

#include <iostream>
#include <sstream>

#include "lina/core/lina.hpp"

int main() {
  using namespace lina;

  const routing::SyntheticInternet internet;

  // 1. Generate and export a device workload.
  mobility::DeviceWorkloadConfig workload;
  workload.user_count = 40;
  workload.days = 7;
  const auto traces =
      mobility::DeviceWorkloadGenerator(internet, workload).generate();

  std::stringstream nomadlog;
  mobility::write_nomadlog_csv(nomadlog, traces);
  const auto csv_bytes = nomadlog.str().size();
  std::cout << "Exported " << traces.size() << " devices as NomadLog CSV ("
            << csv_bytes / 1024 << " KiB)\n";

  // 2. Re-import through the resolver (as one would with real logs).
  const mobility::InternetAddressResolver resolver(internet);
  const auto records = mobility::read_nomadlog_csv(nomadlog);
  const auto rebuilt =
      mobility::traces_from_records(records, resolver, 48.0);
  std::cout << "Re-imported " << records.size() << " records into "
            << rebuilt.size() << " device traces\n";

  // 3. Export one vantage's RIB as a dump and rebuild the router from it.
  const auto& oregon = internet.vantage("Oregon-1");
  std::stringstream dump;
  routing::write_rib(dump, oregon.rib());
  const auto rebuilt_router = routing::vantage_from_dump(
      dump, std::string(oregon.name()), oregon.as_number(),
      oregon.location());
  std::cout << "Rebuilt " << rebuilt_router.name() << " from a "
            << dump.str().size() / 1024 << " KiB dump ("
            << rebuilt_router.fib().size() << " FIB entries)\n";

  // 4. The rebuilt pipeline must reproduce the original numbers.
  std::stringstream dump_again;
  routing::write_rib(dump_again, oregon.rib());
  std::vector<routing::VantageRouter> routers;
  routers.push_back(routing::vantage_from_dump(
      dump_again, std::string(oregon.name()), oregon.as_number(),
      oregon.location()));
  const core::DeviceUpdateCostEvaluator original_eval(
      std::span(&oregon, 1));
  const core::DeviceUpdateCostEvaluator rebuilt_eval(routers);
  const auto original_stats = original_eval.evaluate(traces);
  const auto rebuilt_stats = rebuilt_eval.evaluate(rebuilt);

  std::cout << "\nUpdate rate at " << oregon.name()
            << ": original pipeline "
            << stats::pct(original_stats.front().rate(), 2)
            << ", CSV+dump round trip "
            << stats::pct(rebuilt_stats.front().rate(), 2) << "\n";
  std::cout << "\nSwap the generated CSV for a real NomadLog export and the "
               "dump for a converted\nRouteviews table to run the paper's "
               "methodology on live data.\n";
  return 0;
}
