// Architecture trade-offs on toy topologies: the §5 analytic model, usable
// interactively. For a chosen topology family, sweeps the network size and
// prints how indirection's path stretch and name-based routing's update
// cost scale — the fundamental trade-off the paper quantifies empirically.
//
//   $ ./build/examples/architecture_tradeoffs [chain|clique|tree|star|grid]

#include <cstring>
#include <iostream>
#include <string>

#include "lina/core/lina.hpp"

namespace {

lina::topology::Graph make(const std::string& family, std::size_t n) {
  using namespace lina::topology;
  if (family == "chain") return make_chain(n);
  if (family == "clique") return make_clique(std::min<std::size_t>(n, 128));
  if (family == "tree") return make_binary_tree(n);
  if (family == "star") return make_star(n);
  if (family == "grid") {
    std::size_t side = 2;
    while (side * side < n) ++side;
    return make_grid(side, side);
  }
  throw std::invalid_argument("unknown family: " + family);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lina;

  const std::string family = argc > 1 ? argv[1] : "chain";
  std::cout << stats::heading("Stretch vs update cost on a " + family);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"n", "indirection stretch (hops)",
                  "name-based update cost (fraction of routers)",
                  "simulated update cost"});
  stats::Rng rng(5, "tradeoffs");
  for (const std::size_t n : {15u, 31u, 63u, 127u, 255u}) {
    const analytic::TradeoffAnalyzer analyzer(make(family, n));
    const auto exact = analyzer.exact();
    const auto sim = analyzer.simulate(10000, rng);
    rows.push_back({std::to_string(n),
                    stats::fmt(exact.indirection_stretch, 2),
                    stats::fmt(exact.name_based_update_cost, 4),
                    stats::fmt(sim.name_based_update_cost, 4)});
  }
  std::cout << stats::text_table(rows);

  std::cout
      << "\nIndirection keeps updates at one home agent per event but pays "
         "the\nstretch column on every packet; name-based routing is "
         "stretch-free but\npays the update column at every mobility "
         "event. The paper's Table 1 gives\nthe asymptotics; these are the "
         "exact finite-n values.\n";
  return 0;
}
