// Handoff simulation: watch one mobile session live under each
// architecture. A correspondent streams packets while the device commutes
// home -> cellular -> work -> home; the example prints delivery, stretch,
// outage and control costs side by side.
//
//   $ ./build/examples/handoff_simulation

#include <iostream>

#include "lina/core/lina.hpp"
#include "lina/sim/session.hpp"

int main() {
  using namespace lina;

  const routing::SyntheticInternet internet;
  const sim::ForwardingFabric fabric(internet);

  // A commute within one metro region, watched by a remote correspondent.
  const auto local =
      internet.edge_ases_near(topology::metro_anchors()[0], 3);
  const auto remote =
      internet.edge_ases_near(topology::metro_anchors()[5], 1);

  sim::SessionConfig config;
  config.correspondent = remote[0];
  config.schedule = {
      {0.0, local[0]},     // home
      {3000.0, local[1]},  // cellular on the commute
      {5000.0, local[2]},  // work
      {9000.0, local[1]},  // cellular again
      {11000.0, local[0]}  // back home
  };
  config.duration_ms = 14000.0;
  config.packet_interval_ms = 25.0;
  config.resolver_ttl_ms = 250.0;

  std::cout << "Streaming " << stats::fmt(config.duration_ms / 1000.0, 0)
            << "s of packets at a device making "
            << config.schedule.size() - 1 << " handoffs...\n";

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"architecture", "delivered", "median delay (ms)",
                  "median stretch", "worst outage (ms)", "control msgs"});
  for (const auto arch : {sim::SimArchitecture::kIndirection,
                          sim::SimArchitecture::kNameResolution,
                          sim::SimArchitecture::kNameBased}) {
    const auto result = sim::simulate_session(fabric, arch, config);
    rows.push_back(
        {std::string(sim::sim_architecture_name(arch)),
         stats::pct(result.delivery_ratio(), 1),
         stats::fmt(result.delivery_delay_ms.quantile(0.5), 1),
         stats::fmt(result.stretch.quantile(0.5), 2),
         result.outage_ms.empty() ? "-"
                                  : stats::fmt(result.outage_ms.max(), 1),
         std::to_string(result.control_messages)});
  }
  std::cout << stats::text_table(rows);

  std::cout << "\nIndirection detours every packet via the home agent; "
               "name resolution\nserves stale answers until the TTL "
               "expires; name-based routing floods\nevery router per move "
               "but recovers the direct path. This is the paper's\n"
               "cost-benefit triangle, live.\n";
  return 0;
}
